#include "sim/cmp.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/fanout.hh"
#include "snapshot/serializer.hh"
#include "telemetry/trace_event.hh"

namespace rc
{

namespace
{

std::unique_ptr<Sllc>
makeLlc(const SystemConfig &cfg, MemCtrl &mem)
{
    switch (cfg.llcKind) {
      case LlcKind::Conventional:
        return std::make_unique<ConventionalLlc>(cfg.conv, mem);
      case LlcKind::Reuse:
        return std::make_unique<ReuseCache>(cfg.reuse, mem);
      case LlcKind::Ncid:
        return std::make_unique<NcidCache>(cfg.ncid, mem);
    }
    panic("unknown LLC kind");
}

} // namespace

Cmp::Cmp(const SystemConfig &cfg_,
         std::vector<std::unique_ptr<RefStream>> streams)
    : cfg(cfg_),
      ownedStreams(std::move(streams)),
      mem(cfg_.memory),
      xbar(cfg_.xbar),
      llcPtr(makeLlc(cfg_, mem))
{
    RC_ASSERT(ownedStreams.size() == cfg.numCores,
              "need exactly one stream per core (%u cores, %zu streams)",
              cfg.numCores, ownedStreams.size());
    cores.reserve(cfg.numCores);
    for (CoreId i = 0; i < cfg.numCores; ++i)
        cores.push_back(std::make_unique<Core>(i, cfg.priv,
                                               *ownedStreams[i]));
    llcPtr->setRecallHandler(this);

    if (cfg.prefetch.enable) {
        for (CoreId i = 0; i < cfg.numCores; ++i)
            prefetchers.push_back(std::make_unique<StridePrefetcher>(
                cfg.prefetch, "pf" + std::to_string(i)));
    }

    snapInstr.assign(cfg.numCores, 0);
    snapL1Miss.assign(cfg.numCores, 0);
    snapL2Miss.assign(cfg.numCores, 0);
    snapLlcMiss.assign(cfg.numCores, 0);
}

Cmp::~Cmp() = default;

void
Cmp::issuePrefetches(Core &core, Addr demand_line, Cycle when)
{
    StridePrefetcher &pf = *prefetchers[core.id()];
    prefetchScratch.clear();
    pf.observeMiss(demand_line, prefetchScratch);
    for (Addr cand : prefetchScratch) {
        if (core.priv().present(cand))
            continue;
        // Prefetches ride off the critical path: they consume bank and
        // memory occupancy but never stall the core.
        const Cycle start = xbar.requestSlot(cand, when);
        LlcRequest req{cand, core.id(), ProtoEvent::GETS, start};
        req.prefetch = true;
        const LlcResponse resp = llcPtr->request(req);
        if (resp.memFetched)
            xbar.noteMiss(cand, start, resp.doneAt);
        Addr evict_line = 0;
        bool evict_dirty = false;
        if (core.priv().fillPrefetch(cand, evict_line, evict_dirty)) {
            llcPtr->evictNotify(evict_line, core.id(), evict_dirty,
                                resp.doneAt);
        }
        ++prefetchIssued;
        RC_TEVENT("cmp.prefetch", TraceDomain::Sim, core.id(), start, 0,
                  cand);
    }
}

void
Cmp::attachFeed(FanoutFeed *f)
{
    RC_ASSERT(f, "null feed");
    RC_ASSERT(!feed, "feed already attached");
    RC_ASSERT(!cfg.prefetch.enable,
              "fan-out members must not prefetch (the prefetcher feeds "
              "back into the private hierarchy)");
    RC_ASSERT(horizon == 0 && refsProcessed == 0,
              "attachFeed() must precede the first run()");
    feed = f;
    privL1Geom = CacheGeometry::fromBytes(cfg.priv.l1Bytes, cfg.priv.l1Ways);
    privL2Geom = CacheGeometry::fromBytes(cfg.priv.l2Bytes, cfg.priv.l2Ways);
    replays.resize(cores.size());
    diverged.resize(cores.size());
    for (std::uint32_t i = 0; i < cores.size(); ++i) {
        auto *rs = dynamic_cast<ReplayStream *>(ownedStreams[i].get());
        RC_ASSERT(rs, "fan-out member cores must read ReplayStreams");
        RC_ASSERT(rs->core() == i, "ReplayStream bound to the wrong core");
        replays[i] = rs;
        diverged[i].l1i.assign(privL1Geom.numSets(), 0);
        diverged[i].l1d.assign(privL1Geom.numSets(), 0);
        diverged[i].l2.assign(privL2Geom.numSets(), 0);
    }
    express.assign(cores.size(), ExpressCore{});
    // Express jumps bound their record generation by the quantum end,
    // which needs every record to cost at least one cycle.
    expressEligible = cfg.priv.l1Latency >= 1;
}

bool
Cmp::feedSetsClean(CoreId c, Addr line, bool is_instr) const
{
    const DivergedSets &d = diverged[c];
    if (!d.any)
        return true;
    const std::uint8_t l1 = is_instr ? d.l1i[privL1Geom.setIndex(line)]
                                     : d.l1d[privL1Geom.setIndex(line)];
    return (l1 | d.l2[privL2Geom.setIndex(line)]) == 0;
}

void
Cmp::feedMarkL1(CoreId c, Addr line)
{
    DivergedSets &d = diverged[c];
    const std::uint64_t s1 = privL1Geom.setIndex(line);
    d.any = true;
    d.l1i[s1] = 1;
    d.l1d[s1] = 1;
}

void
Cmp::feedMarkLine(CoreId c, Addr line)
{
    feedMarkL1(c, line);
    diverged[c].l2[privL2Geom.setIndex(line)] = 1;
}

/** Post-response completion of a fan-out LLC step: replay the recorded
 *  fill/upgrade when the touched sets are still clean (the SLLC
 *  transaction may have recalled lines out of this very core, so the
 *  caller's @p replayed verdict is re-checked), otherwise complete for
 *  real and mark everything the record disturbed. */
void
Cmp::completeFanoutLlc(Core &core, const StepRecord &rec,
                       const PrivateMissAction &act, bool replayed,
                       Cycle returned)
{
    const CoreId cid = core.id();
    const Addr line = rec.line;
    const bool is_instr = rec.isInstr();
    if (act.event == ProtoEvent::UPG) {
        if (replayed && feedSetsClean(cid, line, is_instr)) {
            core.priv().applyUpgraded(rec);
        } else {
            core.priv().upgraded(line);
            feedMarkLine(cid, line);
            if (rec.hasVictim())
                feedMarkL1(cid, rec.victimLine);
        }
    } else {
        Addr evict_line = 0;
        bool evict_dirty = false;
        bool evicted;
        if (replayed && feedSetsClean(cid, line, is_instr)) {
            evicted = core.priv().applyFill(rec, evict_line, evict_dirty);
        } else {
            const bool writable = act.event == ProtoEvent::GETX;
            evicted = core.priv().fill(line, is_instr, writable,
                                       evict_line, evict_dirty);
            feedMarkLine(cid, line);
            if (rec.hasVictim())
                feedMarkL1(cid, rec.victimLine);
            if (evicted)
                feedMarkL1(cid, evict_line);
        }
        if (evicted)
            llcPtr->evictNotify(evict_line, cid, evict_dirty, returned);
    }
}

void
Cmp::stepCoreFanout(Core &core)
{
    const CoreId cid = core.id();
    ReplayStream &rs = *replays[cid];
    // Safe to hold by reference: the feed only generates (and may remap
    // its ring) inside record(), and nothing below fetches records.
    const StepRecord &rec = feed->record(cid, rs.cursor);
    ++rs.cursor;

    const Addr line = rec.line;
    const bool is_instr = rec.isInstr();
    const Cycle issue = core.readyAt() + rec.think;

    // Replay the recorded private-hierarchy outcome when every set the
    // record touches is still bit-identical to the recording
    // hierarchy's; otherwise classify for real and mark everything the
    // recording hierarchy disturbed that this replica did not.
    bool replayed = feedSetsClean(cid, line, is_instr);
    PrivateMissAction act;
    if (replayed) {
        ++feedReplayed;
        act = core.priv().applyClassify(rec);
    } else {
        ++feedFellBack;
        act = core.priv().classify(line, rec.op(), is_instr);
        feedMarkLine(cid, line);
        if (rec.hasVictim())
            feedMarkL1(cid, rec.victimLine);
    }

    Cycle done;
    if (!act.needLlc) {
        done = issue + act.latency;
    } else {
        // Publish this step's scheduling key so a recall out of the
        // SLLC transaction can pin the canonical position of any
        // express core it must materialize.
        curKeyReady = core.readyAt();
        curKeyIdx = cid;
        curKeyValid = true;
        const Cycle llc_issue = issue + act.latency;
        const Cycle bank_start = xbar.requestSlot(line, llc_issue);
        LlcRequest lreq{line, cid, act.event, bank_start};
        lreq.pc = rec.pc;
        const LlcResponse resp = llcPtr->request(lreq);
        if (resp.memFetched)
            xbar.noteMiss(line, bank_start, resp.doneAt);
        const Cycle returned = resp.doneAt + xbar.responseLatency();
        completeFanoutLlc(core, rec, act, replayed, returned);
        curKeyValid = false;
        done = returned;
    }

    core.retire(rec.think + (is_instr ? 0 : 1));
    core.setReadyAt(done);
}

void
Cmp::refreshExpressEvent(std::uint32_t c, Cycle end)
{
    ExpressCore &ex = express[c];
    const FanoutFeed::NextEvent e = feed->nextLlcBounded(
        c, ex.cursor, ex.baseCumA, ex.baseReady, end);
    ex.hasEvent = e.hasEvent;
    if (e.hasEvent) {
        ex.eventIdx = e.idx;
        ex.eventPreReady = e.preReady;
        readyCache[c] = e.preReady;
    } else {
        // Nothing SLLC-visible before the quantum boundary; park the
        // core there (the commit pass will advance its cursor).
        readyCache[c] = end;
    }
}

void
Cmp::expressEvent(std::uint32_t c, Cycle end)
{
    ExpressCore &ex = express[c];
    Core &core = *cores[c];
    const std::uint64_t k = ex.eventIdx;
    // By value: a recall below can force other cores' rings to grow.
    const StepRecord rec = feed->record(c, k);
    const PrivateMissAction act = core.priv().actionOf(rec);

    // Bulk-account the jumped-over private hits plus this record from
    // the feed's prefix sums.
    refsProcessed += (k + 1) - ex.cursor;
    feedReplayed += (k + 1) - ex.cursor;
    core.retire(feed->cumIIncl(c, k) - ex.baseCumI);

    curKeyReady = ex.eventPreReady;
    curKeyIdx = c;
    curKeyValid = true;
    const Cycle llc_issue = ex.eventPreReady + rec.think + act.latency;
    const Cycle bank_start = xbar.requestSlot(rec.line, llc_issue);
    LlcRequest lreq{rec.line, c, act.event, bank_start};
    lreq.pc = rec.pc;
    const LlcResponse resp = llcPtr->request(lreq);
    if (resp.memFetched)
        xbar.noteMiss(rec.line, bank_start, resp.doneAt);
    const Cycle returned = resp.doneAt + xbar.responseLatency();

    if (!ex.active) {
        // The transaction recalled lines out of this very core:
        // materializeExpress() rebuilt exact private state through this
        // record's classify phase; finish on the ordinary path.
        completeFanoutLlc(core, rec, act, true, returned);
    } else {
        // Still clean: the private-side completion is deferred to the
        // next materialization; only the SLLC-visible eviction happens
        // now, straight from the record (bit-identical to what this
        // replica would have evicted, since its sets match the feed's).
        curKeyCompletion = true;
        if (act.event != ProtoEvent::UPG && rec.hasVictim())
            llcPtr->evictNotify(rec.victimLine, c, rec.victimDirty(),
                                returned);
        // A recall out of that eviction may have deactivated this core;
        // materializeExpress() then rebuilt the full record's state.
    }
    curKeyValid = false;
    curKeyCompletion = false;

    core.setReadyAt(returned);
    ex.baseCumA = feed->cumAIncl(c, k);
    ex.baseCumI = feed->cumIIncl(c, k);
    ex.baseReady = returned;
    ex.cursor = k + 1;
    replays[c]->cursor = k + 1;
    if (ex.active) {
        refreshExpressEvent(c, end);
    } else {
        ex.exactCursor = k + 1;
        readyCache[c] = returned;
    }
}

void
Cmp::materializeExpress(CoreId c, bool self_step)
{
    ExpressCore &ex = express[c];
    Core &core = *cores[c];
    if (self_step) {
        // Recall out of this core's own in-flight LLC step.  Before the
        // response, everything earlier plus the step's classify phase
        // is canonical; once the completion has begun, the whole record
        // is.  expressEvent()'s epilogue finishes the bookkeeping.
        const std::uint64_t j = ex.eventIdx + (curKeyCompletion ? 1 : 0);
        feed->materializeHier(c, j, core.priv());
        if (!curKeyCompletion)
            (void)core.priv().applyClassify(feed->record(c, ex.eventIdx));
        ex.exactCursor = j;
        ex.active = false;
        expressDemoted = true;
        return;
    }

    // Pin the canonical position of this core relative to the step in
    // flight: records scheduled before the step's (ready, index) key
    // have executed, everything else has not.
    RC_ASSERT(curKeyValid, "fan-out recall outside any step");
    const std::uint64_t j =
        feed->cursorAtKey(c, ex.cursor, ex.baseCumA, ex.baseReady,
                          curKeyReady, /*strict=*/c < curKeyIdx);
    if (j > ex.cursor) {
        refsProcessed += j - ex.cursor;
        feedReplayed += j - ex.cursor;
        core.retire(feed->cumIIncl(c, j - 1) - ex.baseCumI);
        ex.baseReady += feed->cumAIncl(c, j - 1) - ex.baseCumA;
        ex.baseCumA = feed->cumAIncl(c, j - 1);
        ex.baseCumI = feed->cumIIncl(c, j - 1);
        ex.cursor = j;
        replays[c]->cursor = j;
    }
    feed->materializeHier(c, j, core.priv());
    ex.exactCursor = j;
    core.setReadyAt(ex.baseReady);
    readyCache[c] = ex.baseReady;
    ex.active = false;
    expressDemoted = true;
}

void
Cmp::finalizeExpress(std::uint32_t c, Cycle end)
{
    ExpressCore &ex = express[c];
    if (!ex.active)
        return;
    const std::uint64_t j = feed->cursorAtCycle(c, ex.cursor, ex.baseCumA,
                                                ex.baseReady, end);
    if (j > ex.cursor) {
        refsProcessed += j - ex.cursor;
        feedReplayed += j - ex.cursor;
        cores[c]->retire(feed->cumIIncl(c, j - 1) - ex.baseCumI);
        ex.baseReady += feed->cumAIncl(c, j - 1) - ex.baseCumA;
        ex.baseCumA = feed->cumAIncl(c, j - 1);
        ex.baseCumI = feed->cumIIncl(c, j - 1);
        ex.cursor = j;
        replays[c]->cursor = j;
        cores[c]->setReadyAt(ex.baseReady);
    }
    if (ex.exactCursor != ex.cursor) {
        feed->materializeHier(c, ex.cursor, cores[c]->priv());
        ex.exactCursor = ex.cursor;
    }
    ex.active = false;
}

void
Cmp::stepCore(Core &core)
{
    if (feed) {
        stepCoreFanout(core);
        return;
    }
    const MemRef ref = core.nextRef();
    const Cycle issue = core.readyAt() + ref.think;
    const Addr line = lineAlign(ref.addr);

    const PrivateMissAction act =
        core.priv().classify(line, ref.op, ref.isInstr);

    Cycle done;
    if (!act.needLlc) {
        done = issue + act.latency;
    } else {
        const Cycle llc_issue = issue + act.latency;
        const Cycle bank_start = xbar.requestSlot(line, llc_issue);
        LlcRequest lreq{line, core.id(), act.event, bank_start};
        lreq.pc = ref.pc;
        const LlcResponse resp = llcPtr->request(lreq);
        if (resp.memFetched)
            xbar.noteMiss(line, bank_start, resp.doneAt);
        const Cycle returned = resp.doneAt + xbar.responseLatency();

        if (act.event == ProtoEvent::UPG) {
            core.priv().upgraded(line);
        } else {
            Addr evict_line = 0;
            bool evict_dirty = false;
            const bool writable = act.event == ProtoEvent::GETX;
            if (core.priv().fill(line, ref.isInstr, writable,
                                 evict_line, evict_dirty)) {
                llcPtr->evictNotify(evict_line, core.id(), evict_dirty,
                                    returned);
            }
        }
        done = returned;
        if (!prefetchers.empty() && !ref.isInstr &&
            act.event != ProtoEvent::UPG) {
            issuePrefetches(core, line, returned);
        }
    }

    core.retire(ref.think + (ref.isInstr ? 0 : 1));
    core.setReadyAt(done);
}

void
Cmp::run(Cycle cycles)
{
    runSlice(horizon + cycles, true);
}

void
Cmp::runSlice(Cycle end, bool commit)
{
    if (cores.empty()) {
        if (commit)
            horizon = end;
        return;
    }

    // Flat mirror of each core's ready time: the per-reference min-scan
    // walks one contiguous array instead of chasing a unique_ptr per
    // core.  Rebuilt on entry (restore() may have moved the cores) and
    // maintained after every step; stepCore only ever changes the
    // stepped core's ready time.
    const std::uint32_t n = static_cast<std::uint32_t>(cores.size());
    readyCache.resize(n);

    // Hook-free fast path: identical scheduling (first core carrying
    // the strictly smallest ready time wins), none of the per-reference
    // hook/abort/progress checks.  The winning core is stepped in a
    // burst for as long as the scan would keep picking it — its ready
    // time stays strictly below every other core's, or ties one with a
    // higher index — so the per-reference min-scan amortizes over the
    // burst and the core's stream/private state stays hot.
    if (sampleEvery == 0 && checkEvery == 0 && snapEvery == 0 &&
        !abortPtr && !progressPtr) {
        // Arm express replay: a never-diverged fan-out core is
        // scheduled by the pre-step ready time of its next LLC-bound
        // record and jumps over everything in between (the skipped
        // records have no effect outside the core's own private state,
        // which nothing can observe before the commit at the end of
        // this run() call).
        const bool express_on = feed && expressEligible;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (express_on && !diverged[i].any) {
                express[i].active = true;
                refreshExpressEvent(i, end);
            } else {
                if (feed)
                    express[i].active = false;
                readyCache[i] = cores[i]->readyAt();
            }
        }
        const Cycle *rc_begin = readyCache.data();
        for (;;) {
            // One pass finds the winner AND the runner-up (first index
            // carrying the smallest ready time among the other cores):
            // the winner keeps winning the scan while its ready time
            // stays below the runner-up's, or ties it from a lower
            // index, so it can burst without rescanning.
            std::uint32_t idx = 0;
            Cycle best = rc_begin[0];
            Cycle second = ~Cycle{0};
            std::uint32_t second_idx = 0;
            for (std::uint32_t i = 1; i < n; ++i) {
                const Cycle v = rc_begin[i];
                if (v < best) {
                    second = best;
                    second_idx = idx;
                    best = v;
                    idx = i;
                } else if (v < second) {
                    second = v;
                    second_idx = i;
                }
            }
            if (best >= end)
                break;
            if (express_on && express[idx].active) {
                expressEvent(idx, end);
                continue;
            }
            Core &burst = *cores[idx];
            expressDemoted = false;
            Cycle r;
            // A recall out of this burst may deactivate an express core
            // whose next step then lands before the cached runner-up
            // time; expressDemoted forces a rescan when that happens.
            do {
                stepCore(burst);
                ++refsProcessed;
                r = burst.readyAt();
            } while (r < end &&
                     (r < second || (r == second && idx < second_idx)) &&
                     !expressDemoted);
            readyCache[idx] = r;
        }
        if (feed && commit) {
            for (std::uint32_t i = 0; i < n; ++i)
                finalizeExpress(i, end);
        }
        if (commit)
            horizon = end;
        return;
    }

    if (feed) {
        // Hooked slices run the per-reference path; express laziness
        // never spans a hook installation (hooks are installed between
        // run() calls and the final slice of a run materializes).
        for (std::uint32_t i = 0; i < n; ++i) {
            RC_ASSERT(!express[i].active ||
                          express[i].exactCursor == express[i].cursor,
                      "hooked slice entered with lazy express state");
            express[i].active = false;
        }
    }
    for (std::uint32_t i = 0; i < n; ++i)
        readyCache[i] = cores[i]->readyAt();

    for (;;) {
        std::uint32_t idx = 0;
        Cycle best = readyCache[0];
        for (std::uint32_t i = 1; i < n; ++i) {
            if (readyCache[i] < best) {
                best = readyCache[i];
                idx = i;
            }
        }
        if (best >= end)
            break;
        if (abortPtr && abortPtr->load(std::memory_order_relaxed)) {
            if (onAbort)
                onAbort(*this);
            throwSimError(SimError::Kind::Hang,
                          "watchdog abort: run made no forward progress "
                          "(aborted after %llu references)",
                          static_cast<unsigned long long>(refsProcessed));
        }
        // Fire every epoch boundary at or before the reference about to
        // be processed, so samples observe the quiescent pre-reference
        // state of their epoch even when a long stall skips several
        // boundaries at once.
        if (sampleEvery != 0) {
            while (sampleNext <= best) {
                sampleHook(*this, sampleNext);
                sampleNext += sampleEvery;
            }
        }
        Core &next = *cores[idx];
        stepCore(next);
        ++refsProcessed;
        readyCache[idx] = next.readyAt();
        if (progressPtr)
            progressPtr->store(refsProcessed, std::memory_order_relaxed);
        if (checkEvery != 0 && refsProcessed % checkEvery == 0)
            checkHook(*this, next.readyAt());
        if (snapEvery != 0 && refsProcessed % snapEvery == 0)
            snapHook(*this, next.readyAt());
    }
    if (commit)
        horizon = end;
}

void
Cmp::setCheckHook(std::uint64_t every_n_refs,
                  std::function<void(const Cmp &, Cycle)> hook)
{
    checkEvery = hook ? every_n_refs : 0;
    checkHook = std::move(hook);
}

void
Cmp::setSnapshotHook(std::uint64_t every_n_refs,
                     std::function<void(const Cmp &, Cycle)> hook)
{
    snapEvery = hook ? every_n_refs : 0;
    snapHook = std::move(hook);
}

void
Cmp::setSampleHook(Cycle every_cycles,
                   std::function<void(const Cmp &, Cycle)> hook)
{
    sampleEvery = hook ? every_cycles : 0;
    sampleHook = std::move(hook);
    if (sampleEvery == 0) {
        sampleNext = 0;
        return;
    }
    // A restored checkpoint carries the next boundary; only a fresh
    // system (or a cadence change that left the boundary behind the
    // horizon) computes it from scratch.
    if (sampleNext <= horizon)
        sampleNext = (horizon / sampleEvery + 1) * sampleEvery;
}

void
Cmp::setProgressCounter(std::atomic<std::uint64_t> *counter)
{
    progressPtr = counter;
}

void
Cmp::setAbortFlag(const std::atomic<bool> *flag,
                  std::function<void(const Cmp &)> on_abort)
{
    abortPtr = flag;
    onAbort = std::move(on_abort);
}

void
Cmp::save(Serializer &s) const
{
    for (const ExpressCore &ex : express) {
        RC_ASSERT(!ex.active || ex.exactCursor == ex.cursor,
                  "checkpoint of a fan-out member with lazy express "
                  "state (save() is only quiescent at run boundaries "
                  "and hook points)");
    }
    s.beginSection("cmp");

    // Construction parameters: restore() validates these against its
    // own config instead of restoring them, so a checkpoint can never
    // be replayed into a differently-shaped system.
    s.beginSection("meta");
    s.putU32(cfg.numCores);
    s.putU8(static_cast<std::uint8_t>(cfg.llcKind));
    s.putU64(cfg.seed);
    s.putU32(cfg.capacityScale);
    s.putBool(cfg.prefetch.enable);
    s.endSection();

    s.beginSection("clock");
    s.putU64(horizon);
    s.putU64(refsProcessed);
    s.putU64(prefetchIssued);
    s.putU64(sampleNext);
    s.putU64(snapCycle);
    saveVec(s, snapInstr);
    saveVec(s, snapL1Miss);
    saveVec(s, snapL2Miss);
    saveVec(s, snapLlcMiss);
    s.endSection();

    s.beginSection("streams");
    for (const auto &stream : ownedStreams) {
        s.beginSection("stream");
        stream->save(s);
        s.endSection();
    }
    s.endSection();

    s.beginSection("cores");
    for (const auto &core : cores) {
        s.beginSection("core");
        core->save(s);
        s.endSection();
    }
    s.endSection();

    s.beginSection("llc");
    llcPtr->save(s);
    s.endSection();

    s.beginSection("mem");
    mem.save(s);
    s.endSection();

    s.beginSection("xbar");
    xbar.save(s);
    s.endSection();

    s.beginSection("prefetchers");
    s.putU64(prefetchers.size());
    for (const auto &pf : prefetchers)
        pf->save(s);
    s.endSection();

    s.endSection();
}

void
Cmp::restore(Deserializer &d)
{
    d.beginSection("cmp");

    d.beginSection("meta");
    const std::uint32_t ckCores = d.getU32();
    const auto ckKind = static_cast<LlcKind>(d.getU8());
    const std::uint64_t ckSeed = d.getU64();
    const std::uint32_t ckScale = d.getU32();
    const bool ckPrefetch = d.getBool();
    if (ckCores != cfg.numCores || ckKind != cfg.llcKind ||
        ckSeed != cfg.seed || ckScale != cfg.capacityScale ||
        ckPrefetch != cfg.prefetch.enable)
        throwSimError(SimError::Kind::Snapshot,
                      "checkpoint was taken under a different system "
                      "configuration (%u cores, llcKind %u, seed %llu, "
                      "scale %u, prefetch %d; this system: %u/%u/%llu/%u/%d)",
                      ckCores, static_cast<unsigned>(ckKind),
                      static_cast<unsigned long long>(ckSeed), ckScale,
                      ckPrefetch, cfg.numCores,
                      static_cast<unsigned>(cfg.llcKind),
                      static_cast<unsigned long long>(cfg.seed),
                      cfg.capacityScale, cfg.prefetch.enable);
    d.endSection();

    d.beginSection("clock");
    horizon = d.getU64();
    refsProcessed = d.getU64();
    prefetchIssued = d.getU64();
    sampleNext = d.getU64();
    snapCycle = d.getU64();
    restoreVec(d, snapInstr, "instruction snapshots");
    restoreVec(d, snapL1Miss, "L1-miss snapshots");
    restoreVec(d, snapL2Miss, "L2-miss snapshots");
    restoreVec(d, snapLlcMiss, "LLC-miss snapshots");
    d.endSection();

    d.beginSection("streams");
    for (const auto &stream : ownedStreams) {
        d.beginSection("stream");
        stream->restore(d);
        d.endSection();
    }
    d.endSection();

    d.beginSection("cores");
    for (const auto &core : cores) {
        d.beginSection("core");
        core->restore(d);
        d.endSection();
    }
    d.endSection();

    d.beginSection("llc");
    llcPtr->restore(d);
    d.endSection();

    d.beginSection("mem");
    mem.restore(d);
    d.endSection();

    d.beginSection("xbar");
    xbar.restore(d);
    d.endSection();

    d.beginSection("prefetchers");
    const std::uint64_t pfCount = d.getU64();
    if (pfCount != prefetchers.size())
        throwSimError(SimError::Kind::Snapshot,
                      "checkpoint carries %llu prefetcher(s), this system "
                      "has %zu", static_cast<unsigned long long>(pfCount),
                      prefetchers.size());
    for (const auto &pf : prefetchers)
        pf->restore(d);
    d.endSection();

    d.endSection();
}

Cycle
Cmp::maxCoreReadyAt() const
{
    Cycle latest = 0;
    for (const auto &c : cores)
        latest = std::max(latest, c->readyAt());
    return latest;
}

void
Cmp::beginMeasurement()
{
    snapCycle = horizon;
    for (CoreId i = 0; i < cores.size(); ++i) {
        snapInstr[i] = cores[i]->instructions();
        snapL1Miss[i] = cores[i]->priv().l1MissTotal();
        snapL2Miss[i] = cores[i]->priv().l2MissTotal();
        snapLlcMiss[i] = llcPtr->missesBy(i);
    }
}

std::uint64_t
Cmp::measuredInstructions(CoreId core) const
{
    return cores[core]->instructions() - snapInstr[core];
}

double
Cmp::ipc(CoreId core) const
{
    // The zero-measurement-window guard lives here (and only here):
    // aggregateIpc() and every harness consumer funnel through ipc(),
    // so callers never need their own window check.
    const Cycle c = measuredCycles();
    return c ? static_cast<double>(measuredInstructions(core)) /
                   static_cast<double>(c)
             : 0.0;
}

double
Cmp::aggregateIpc() const
{
    double sum = 0.0;
    for (CoreId i = 0; i < cores.size(); ++i)
        sum += ipc(i);
    return sum;
}

MpkiTriple
Cmp::measuredMpki(CoreId core) const
{
    MpkiTriple t;
    const double ki =
        static_cast<double>(measuredInstructions(core)) / 1000.0;
    if (ki <= 0.0)
        return t;
    t.l1 = static_cast<double>(cores[core]->priv().l1MissTotal() -
                               snapL1Miss[core]) / ki;
    t.l2 = static_cast<double>(cores[core]->priv().l2MissTotal() -
                               snapL2Miss[core]) / ki;
    t.llc = static_cast<double>(llcPtr->missesBy(core) -
                                snapLlcMiss[core]) / ki;
    return t;
}

bool
Cmp::recall(Addr line_addr, std::uint32_t core_mask)
{
    bool dirty = false;
    for (CoreId c = 0; c < cores.size(); ++c) {
        if (core_mask & (1u << c)) {
            // An express core's private state is stale; rebuild it at
            // its canonical position before consulting it.
            if (feed && express[c].active)
                materializeExpress(c, curKeyValid && curKeyIdx == c);
            dirty |= cores[c]->priv().invalidate(line_addr);
            // Recalls never reach the feed's recording hierarchies, so
            // the touched sets have diverged from them for good.
            if (feed)
                feedMarkLine(c, line_addr);
        }
    }
    return dirty;
}

bool
Cmp::downgrade(Addr line_addr, std::uint32_t core_mask)
{
    bool dirty = false;
    for (CoreId c = 0; c < cores.size(); ++c) {
        if (core_mask & (1u << c)) {
            if (feed && express[c].active)
                materializeExpress(c, curKeyValid && curKeyIdx == c);
            dirty |= cores[c]->priv().downgrade(line_addr);
            if (feed)
                feedMarkLine(c, line_addr);
        }
    }
    return dirty;
}

} // namespace rc
