/**
 * @file
 * Binary trace recording and replay.
 *
 * The simulator is trace-driven; synthetic generators are the default
 * source, but downstream users often want to replay captured reference
 * streams (or archive a synthetic stream for exact cross-machine
 * reproduction).  The format is a fixed 16-byte header followed by
 * 12-byte little-endian records:
 *
 *   [0..7]  address (64-bit)
 *   [8..10] think (24-bit non-memory instruction count)
 *   [11]    flags: bit0 = write, bit1 = instruction fetch
 */

#ifndef RC_SIM_TRACE_FILE_HH
#define RC_SIM_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace rc
{

/** Writes MemRef streams to a trace file. */
class TraceWriter
{
  public:
    /** Opens (truncates) @p path and writes the header; fatal on error. */
    explicit TraceWriter(const std::string &path);

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one reference. */
    void write(const MemRef &ref);

    /** References written so far. */
    std::uint64_t count() const { return written; }

    /** Flush and close; further writes are invalid. */
    void close();

  private:
    std::FILE *file = nullptr;
    std::uint64_t written = 0;
};

/**
 * Replays a trace file as a RefStream.  The stream loops at EOF (the
 * simulator needs an infinite stream), counting wraps.
 */
class TraceReader : public RefStream
{
  public:
    /**
     * Loads the whole trace into memory.  Throws SimError(Trace) on a
     * missing file, bad magic, truncated header, a short read
     * mid-record, or an empty trace — recoverable, so one corrupt
     * trace quarantines its run instead of killing the sweep.
     */
    explicit TraceReader(const std::string &path);

    MemRef next() override;

    const char *label() const override { return name.c_str(); }

    /** Number of records in the file. */
    std::uint64_t size() const { return records.size(); }

    /** Times the replay wrapped back to the start. */
    std::uint64_t wraps() const { return wrapCount; }

  private:
    std::string name;
    std::vector<MemRef> records;
    std::size_t pos = 0;
    std::uint64_t wrapCount = 0;
};

/** Record @p count references of @p source into @p path. */
void recordTrace(RefStream &source, std::uint64_t count,
                 const std::string &path);

} // namespace rc

#endif // RC_SIM_TRACE_FILE_HH
