/**
 * @file
 * Binary trace recording and replay.
 *
 * The simulator is trace-driven; synthetic generators are the default
 * source, but downstream users often want to replay captured reference
 * streams (or archive a synthetic stream for exact cross-machine
 * reproduction).  The format is a fixed 16-byte header (magic
 * "RCTRACE<version>") followed by fixed-size little-endian records.
 *
 * Version 2 (written by TraceWriter) uses 20-byte records:
 *
 *   [0..7]   address (64-bit)
 *   [8..15]  program counter (64-bit; 0 = unknown)
 *   [16..18] think (24-bit non-memory instruction count)
 *   [19]     flags: bit0 = write, bit1 = instruction fetch
 *
 * Version 1 (12-byte records: address, think, flags — no PC) is still
 * read; its references replay with pc = 0.  An unrecognized version
 * byte, like any other framing defect, raises SimError(Trace).
 */

#ifndef RC_SIM_TRACE_FILE_HH
#define RC_SIM_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace rc
{

/** Writes MemRef streams to a trace file. */
class TraceWriter
{
  public:
    /** Opens (truncates) @p path and writes the header; fatal on error. */
    explicit TraceWriter(const std::string &path);

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /**
     * Append one reference.  Records accumulate in a 64 KiB buffer and
     * reach the file in blocks; the on-disk bytes are identical to
     * per-record writes.  close() (or the destructor) flushes the tail.
     */
    void write(const MemRef &ref);

    /** References written so far (buffered ones included). */
    std::uint64_t count() const { return written; }

    /** Flush and close; further writes are invalid. */
    void close();

  private:
    void flushBuffer();

    std::FILE *file = nullptr;
    std::uint64_t written = 0;
    std::vector<unsigned char> buf; //!< pending encoded records
};

/**
 * Replays a trace file as a RefStream.  The stream loops at EOF (the
 * simulator needs an infinite stream), counting wraps.
 *
 * Records are streamed from disk through a 64 KiB block buffer rather
 * than preloaded, so a restored run can seekToRecord() straight to its
 * checkpointed cursor without re-decoding the records it already
 * consumed; any seek (explicit or the wrap at EOF) discards the buffer.
 */
class TraceReader : public RefStream
{
  public:
    /**
     * Opens @p path and validates its framing (header magic and an
     * exact multiple of whole records).  Throws SimError(Trace) on a
     * missing file, bad magic, truncated header, a short file ending
     * mid-record, or an empty trace — recoverable, so one corrupt
     * trace quarantines its run instead of killing the sweep.
     */
    explicit TraceReader(const std::string &path);

    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    MemRef next() override;

    const char *label() const override { return name.c_str(); }

    /** Number of records in the file. */
    std::uint64_t size() const { return recordCount; }

    /** Times the replay wrapped back to the start. */
    std::uint64_t wraps() const { return wrapCount; }

    /**
     * Fast-forward (or rewind) the cursor so that exactly @p n records
     * have been consumed, without decoding the skipped ones; @p n past
     * the file size wraps, updating wraps() accordingly.  The record
     * framing was validated at open, so the seek is a bounds-checked
     * file offset computation.
     */
    void seekToRecord(std::uint64_t n);

    /** Absolute records consumed since construction (wraps included). */
    std::uint64_t consumed() const { return wrapCount * recordCount + pos; }

    /** Record layout version of the file (1 = no PC, 2 = with PC). */
    std::uint32_t formatVersion() const { return version; }

    /** Checkpoint the replay cursor (consumed-record count). */
    void save(Serializer &s) const override;

    /** Restore a save()'d cursor via seekToRecord(). */
    void restore(Deserializer &d) override;

  private:
    /** Refill the block buffer from the file; throws on a short read. */
    void refill();

    std::string name;
    std::FILE *file = nullptr;
    std::uint32_t version = 0;    //!< record layout (1 or 2)
    std::size_t recBytes = 0;     //!< record size for `version`
    std::uint64_t recordCount = 0;
    std::uint64_t pos = 0;        //!< next record index within the file
    std::uint64_t wrapCount = 0;
    std::vector<unsigned char> rbuf; //!< block buffer (whole records)
    std::size_t bufPos = 0;          //!< consumed bytes within rbuf
    std::size_t bufLen = 0;          //!< valid bytes within rbuf
};

/** Record @p count references of @p source into @p path. */
void recordTrace(RefStream &source, std::uint64_t count,
                 const std::string &path);

} // namespace rc

#endif // RC_SIM_TRACE_FILE_HH
