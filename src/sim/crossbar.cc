#include "sim/crossbar.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

Crossbar::Crossbar(const CrossbarConfig &cfg_)
    : cfg(cfg_),
      bankBusyUntil(cfg_.numBanks, 0)
{
    RC_ASSERT(cfg.numBanks > 0, "need at least one SLLC bank");
    mshrFiles.reserve(cfg.numBanks);
    for (std::uint32_t b = 0; b < cfg.numBanks; ++b) {
        mshrFiles.push_back(std::make_unique<MshrFile>(
            cfg.mshrPerBank, "mshr" + std::to_string(b)));
    }
}

std::uint32_t
Crossbar::bankOf(Addr line_addr) const
{
    return static_cast<std::uint32_t>(lineNumber(line_addr) % cfg.numBanks);
}

Cycle
Crossbar::requestSlot(Addr line_addr, Cycle issue)
{
    const std::uint32_t bank = bankOf(line_addr);
    Cycle arrival = issue + cfg.linkLatency;

    // MSHR back-pressure: a full file rejects the request until an entry
    // retires.
    MshrFile &mshr = *mshrFiles[bank];
    if (mshr.occupancy(arrival) >= mshr.capacity()) {
        const Cycle release = mshr.earliestRelease();
        if (release != neverCycle)
            arrival = std::max(arrival, release);
    }

    const Cycle start = std::max(arrival, bankBusyUntil[bank]);
    bankBusyUntil[bank] = start + cfg.bankOccupancy;
    return start;
}

void
Crossbar::noteMiss(Addr line_addr, Cycle start, Cycle done_at)
{
    mshrFiles[bankOf(line_addr)]->request(line_addr, start, done_at);
}

void
Crossbar::save(Serializer &s) const
{
    saveVec(s, bankBusyUntil);
    s.putU64(mshrFiles.size());
    for (const auto &m : mshrFiles) {
        s.beginSection("mshr");
        m->save(s);
        s.endSection("mshr");
    }
}

void
Crossbar::restore(Deserializer &d)
{
    restoreVec(d, bankBusyUntil, "crossbar bank busy windows");
    const std::uint64_t n = d.getU64();
    if (n != mshrFiles.size())
        throwSimError(SimError::Kind::Snapshot,
                      "crossbar has %zu MSHR files but the checkpoint "
                      "carries %llu",
                      mshrFiles.size(), (unsigned long long)n);
    for (auto &m : mshrFiles) {
        d.beginSection("mshr");
        m->restore(d);
        d.endSection("mshr");
    }
}

} // namespace rc
