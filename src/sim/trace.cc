#include "sim/trace.hh"

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

void
RefStream::save(Serializer &s) const
{
    (void)s;
    throwSimError(SimError::Kind::Snapshot,
                  "stream '%s' is not checkpointable (no save override)",
                  label());
}

void
RefStream::restore(Deserializer &d)
{
    (void)d;
    throwSimError(SimError::Kind::Snapshot,
                  "stream '%s' is not checkpointable (no restore override)",
                  label());
}

} // namespace rc
