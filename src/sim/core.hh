/**
 * @file
 * In-order blocking core model.
 *
 * Each core retires one instruction per cycle until it reaches the next
 * memory reference of its stream; the reference's latency through the
 * cache hierarchy then stalls the core.  This is the standard
 * trace-driven abstraction of the paper's in-order SPARC cores: since
 * every SLLC organization is driven by identical streams, cores and
 * private levels, relative performance isolates the SLLC.
 */

#ifndef RC_SIM_CORE_HH
#define RC_SIM_CORE_HH

#include <memory>
#include <string>

#include "cache/private_cache.hh"
#include "common/stats.hh"
#include "sim/trace.hh"
#include "workloads/generator.hh"

namespace rc
{

/** Per-core state: stream cursor, private caches and retirement counters. */
class Core
{
  public:
    /**
     * @param id core number.
     * @param cfg private-cache sizing.
     * @param stream reference stream (not owned).
     */
    Core(CoreId id, const PrivateConfig &cfg, RefStream &stream);

    /** Core number. */
    CoreId id() const { return coreId; }

    /** Cycle at which the core can issue its next reference. */
    Cycle readyAt() const { return ready; }

    /** Advance the ready time (set by the CMP after each reference). */
    void setReadyAt(Cycle c) { ready = c; }

    /** Fetch the next reference from the stream.  The dominant stream
     *  type is dispatched through its concrete (final) class so the
     *  per-reference call devirtualizes; anything else falls back to
     *  the virtual interface. */
    MemRef nextRef()
    {
        if (synth)
            return synth->next();
        return streamRef.next();
    }

    /** Account @p n retired instructions. */
    void retire(std::uint64_t n) { instrRetired += n; }

    /** Instructions retired since construction. */
    std::uint64_t instructions() const { return instrRetired; }

    /** Private hierarchy (L1I/L1D/L2). */
    PrivateHierarchy &priv() { return hierarchy; }

    /** Private hierarchy, const. */
    const PrivateHierarchy &priv() const { return hierarchy; }

    /** Label of the stream driving this core. */
    const char *workloadLabel() const { return streamRef.label(); }

    /** Checkpoint ready time, retirement count and private caches
     *  (the stream is serialized separately by its owner). */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    CoreId coreId;
    RefStream &streamRef;
    SyntheticStream *synth = nullptr; //!< devirtualized fast path
    PrivateHierarchy hierarchy;
    Cycle ready = 0;
    std::uint64_t instrRetired = 0;
};

} // namespace rc

#endif // RC_SIM_CORE_HH
