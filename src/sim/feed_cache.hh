/**
 * @file
 * Persistent content-addressed feed cache: the fan-out front end's
 * classified per-core StepRecord streams, serialized once and replayed
 * forever.
 *
 * PAPER.md's configurations differ only at the SLLC, so the private
 * hierarchy's classification of a (mix, seed, scale, window,
 * private-prefix) tuple is identical across every sweep, tournament
 * rerun and daemon request that shares those inputs.  The fan-out front
 * end (FanoutFeed) already computes that classification exactly once
 * per sweep; this module makes it durable, so even a never-before-seen
 * SLLC config skips the front end entirely.
 *
 * Blob format `RCFEED1` (one file per key, `feed-<digest16>.bin`):
 *
 *   [0..71]    72-byte fixed header: magic "RCFEED1\0", format version,
 *              sizeof(StepRecord), total file bytes, arrays region
 *              offset/length/hash, meta region offset/length, an
 *              endianness tag, and a CRC32 over the preceding header
 *              bytes.
 *   arrays     per-core flat arrays, each 64-byte aligned: StepRecords,
 *              inclusive cumA/cumI prefix sums, and the LLC-bound
 *              record index.  Guarded by a 64-bit word-stride hash
 *              (feedHash64) rather than byte-wise CRC32 so a warm open
 *              validates at memory bandwidth.
 *   meta       a complete snapshot-container image (RCSNAP01, its own
 *              CRC32): the full canonical key bytes, per-core labels,
 *              counts, array offsets, and every chunk-boundary stream +
 *              virgin-hierarchy snapshot the express lane needs.
 *
 * The arrays region is consumed zero-copy: a warm FanoutFeed reads
 * StepRecords straight out of the mmap.  Lookups verify the header CRC,
 * the arrays hash, the meta container CRC, AND compare the stored key
 * bytes against the probe — a corrupt blob or digest collision demotes
 * to a miss (corruption additionally unlinks the blob), never a wrong
 * answer.  Writes follow the ResultCache crash-safety discipline:
 * tmp + fsync + rename, a flock-guarded append-only `feed.index`, and
 * startup recovery that adopts unindexed blobs and sweeps stale tmps.
 */

#ifndef RC_SIM_FEED_CACHE_HH
#define RC_SIM_FEED_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/private_cache.hh"
#include "sim/system_config.hh"
#include "workloads/mixes.hh"

namespace rc
{

class Serializer;
class FanoutFeed;

/**
 * Serialize the front-end-invariant SystemConfig prefix: the fields
 * that shape reference generation and private-hierarchy classification
 * (cores, L1/L2 geometry and latencies, prefetcher) and nothing else.
 * This is the exact head of the service's canonical config walk —
 * run_request.cc calls it so the two encodings can never drift — and
 * the first section of the feed-cache key, which is what makes the key
 * insensitive to SLLC-only config changes.
 */
void putFrontEndConfig(Serializer &s, const SystemConfig &c);

/** Canonical feed-cache key: bytes + their FNV-1a 64 digest. */
struct FeedKey
{
    std::vector<std::uint8_t> bytes;
    std::uint64_t digest = 0;
};

/**
 * Build the key for one front-end pass: front-end config prefix +
 * config seed/capacityScale + mix applications + the deterministic run
 * window (seed, scale, warmup, measure).  Two runs share a key iff
 * their fan-out front ends generate bit-identical record streams.
 */
FeedKey feedKeyOf(const SystemConfig &cfg, const Mix &mix,
                  std::uint64_t seed, std::uint32_t scale,
                  std::uint64_t warmup, std::uint64_t measure);

/** 16-hex-digit spelling of a key digest (blob names, logs). */
std::string feedDigestHex(std::uint64_t digest);

/** Word-stride 64-bit hash of the arrays region; memory-bandwidth
 *  integrity check where byte-wise CRC32 would dominate a warm open. */
std::uint64_t feedHash64(const void *data, std::size_t len);

/**
 * One mapped blob.  Owns the mmap; CoreView pointers alias it, so a
 * FanoutFeed replaying from the blob keeps the shared_ptr alive.
 * Open() validates header CRC, arrays hash and the meta container
 * before any pointer is handed out; every defect throws
 * SimError(Kind::Snapshot).
 */
class FeedBlob
{
  public:
    /** A chunk-boundary stream or virgin-hierarchy snapshot. */
    struct Snap
    {
        std::uint64_t idx = 0;           //!< first record it precedes
        std::vector<std::uint8_t> image; //!< Serializer::image() bytes
    };

    /** Zero-copy view of one core's arrays inside the mapping. */
    struct CoreView
    {
        std::string label;
        const StepRecord *recs = nullptr;
        const std::uint64_t *cumA = nullptr;
        const std::uint64_t *cumI = nullptr;
        const std::uint64_t *llc = nullptr;
        std::uint64_t count = 0;    //!< records (chunk-aligned)
        std::uint64_t llcCount = 0; //!< LLC-bound records
        std::vector<Snap> streamSnaps;
        std::vector<Snap> hierSnaps;
    };

    /** Map and validate @p path; throws SimError(Kind::Snapshot). */
    static std::shared_ptr<const FeedBlob> open(const std::string &path);

    ~FeedBlob();

    FeedBlob(const FeedBlob &) = delete;
    FeedBlob &operator=(const FeedBlob &) = delete;

    const std::vector<std::uint8_t> &keyBytes() const { return key; }
    std::uint64_t digest() const { return keyDigest; }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores.size());
    }
    const CoreView &core(std::uint32_t c) const { return cores[c]; }
    const std::string &path() const { return origin; }

  private:
    FeedBlob() = default;

    std::string origin;
    const std::uint8_t *base = nullptr; //!< mmap base
    std::size_t mapLen = 0;
    std::vector<std::uint8_t> key;
    std::uint64_t keyDigest = 0;
    std::vector<CoreView> cores;
};

/** Monotonic counters exported into daemon stats JSON / bench output. */
struct FeedCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t corruptDropped = 0; //!< blobs failing validation
    std::uint64_t recovered = 0;      //!< blobs adopted at startup
};

/**
 * RAII holder of one key's exclusive flock lease (see
 * FeedCache::lockKey()); unlocks and closes on destruction.
 */
class FeedKeyLease
{
  public:
    ~FeedKeyLease();
    FeedKeyLease(const FeedKeyLease &) = delete;
    FeedKeyLease &operator=(const FeedKeyLease &) = delete;

  private:
    friend class FeedCache;
    FeedKeyLease() = default;
    int fd = -1;
};

/**
 * The persistent feed store; thread-safe.  Opened blobs are kept as
 * weak references so concurrent sweep jobs hitting the same key share
 * one mapping, while idle blobs cost nothing once the last replaying
 * feed releases them.
 */
class FeedCache
{
  public:
    /** Open (creating if needed) @p dir and run startup recovery.
     *  Throws SimError(Kind::Io) when the directory is unusable. */
    explicit FeedCache(const std::string &dir);

    /**
     * Process-wide shared instance for @p dir (canonicalized), so the
     * harness, daemon stats and benches observe one set of counters.
     */
    static std::shared_ptr<FeedCache> open(const std::string &dir);

    /**
     * Look @p key up.
     * @return the mapped blob, or nullptr on miss.  A blob failing any
     *         validation check is unlinked and counted corruptDropped;
     *         a digest collision (key bytes differ) is a plain miss.
     */
    std::shared_ptr<const FeedBlob> lookup(const FeedKey &key);

    /**
     * Persist @p feed's captured record streams under @p key (atomic
     * tmp+fsync+rename blob, flock-guarded index append).  The feed
     * must have been constructed in capture mode.
     */
    void store(const FeedKey &key, const FanoutFeed &feed);

    /** Number of blobs currently believed present. */
    std::size_t size() const;

    /** Counter snapshot (taken under the cache lock). */
    FeedCacheStats stats() const;

    /** Blob path for @p digest (tests and fault injection). */
    std::string blobPath(std::uint64_t digest) const;

    /**
     * Acquire the exclusive flock lease for @p digest's key (blocking).
     * Cold-key writers take this before simulating so two processes
     * racing the same key serialize: the first computes and stores, the
     * second wakes, re-looks-up, and replays the warm blob.  Purely an
     * efficiency protocol — correctness never depends on it, and a
     * nullptr return (lock file unusable) just means both compute.
     */
    std::unique_ptr<FeedKeyLease> lockKey(std::uint64_t digest);

    /** Rewrite the compacted index. */
    void persistIndex();

    const std::string &directory() const { return dir; }

  private:
    void appendIndex(std::uint64_t digest);
    void recover();

    std::string dir;
    mutable std::mutex mu;
    std::unordered_set<std::uint64_t> known; //!< digests with blobs
    //! Live mappings by digest; weak so an unused blob unmaps itself.
    std::unordered_map<std::uint64_t, std::weak_ptr<const FeedBlob>>
        resident;
    FeedCacheStats counters;
};

/**
 * Fault-injection helpers (FaultInjector delegates here because the
 * damage must be layout-aware): each corrupts an on-disk blob exactly
 * the way one feed FaultClass describes.
 */
//! Truncate the blob mid-arrays (torn write / short copy).
void feedTruncateBlob(const std::string &path);
//! Flip one byte inside the arrays region (silent media corruption).
void feedFlipBlobByte(const std::string &path);
//! Bump the format version word and re-seal the header CRC, so ONLY
//! the version check can reject the blob (stale-format detection).
void feedStaleVersionBlob(const std::string &path);

} // namespace rc

#endif // RC_SIM_FEED_CACHE_HH
