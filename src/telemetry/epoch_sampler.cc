#include "telemetry/epoch_sampler.hh"

#include <ostream>

#include "analysis/liveness.hh"
#include "common/log.hh"
#include "mem/dram.hh"
#include "sim/cmp.hh"
#include "snapshot/serializer.hh"

namespace rc
{

namespace
{

/**
 * Read a counter under whichever name the SLLC organization registered
 * it ("tagHitsData" in the reuse cache is "dataHits" elsewhere); 0 when
 * the organization has no such category at all.
 */
std::uint64_t
statOr(const StatSet &set, std::initializer_list<const char *> names)
{
    for (const char *name : names) {
        if (const Counter *c = set.tryRef(name))
            return *c;
    }
    return 0;
}

std::uint64_t
sub(std::uint64_t cur, std::uint64_t prev)
{
    RC_ASSERT(cur >= prev, "telemetry counter went backwards "
              "(%llu -> %llu)", static_cast<unsigned long long>(prev),
              static_cast<unsigned long long>(cur));
    return cur - prev;
}

/** CSV cell for a ratio: "nan" when the denominator is empty. */
void
putRatio(std::ostream &os, double num, double den)
{
    if (den > 0.0)
        os << num / den;
    else
        os << "nan";
}

void
saveVecU64(Serializer &s, const std::vector<std::uint64_t> &v)
{
    s.putU64(v.size());
    for (std::uint64_t x : v)
        s.putU64(x);
}

void
restoreVecU64(Deserializer &d, std::vector<std::uint64_t> &v)
{
    v.resize(d.getU64());
    for (std::uint64_t &x : v)
        x = d.getU64();
}

} // namespace

EpochSampler::EpochSampler(Cycle interval_cycles) : every(interval_cycles)
{
    if (every == 0)
        fatal("epoch sampler interval must be positive");
}

EpochSampler::Baseline
EpochSampler::readCounters(const Cmp &cmp) const
{
    Baseline b;
    b.refs = cmp.referencesProcessed();
    const std::uint32_t n = cmp.numCores();
    b.instr.resize(n);
    b.l1Miss.resize(n);
    b.l2Miss.resize(n);
    b.llcMiss.resize(n);
    for (std::uint32_t c = 0; c < n; ++c) {
        b.instr[c] = cmp.core(c).instructions();
        b.l1Miss[c] = cmp.core(c).priv().l1MissTotal();
        b.l2Miss[c] = cmp.core(c).priv().l2MissTotal();
        b.llcMiss[c] = cmp.llc().missesBy(c);
    }
    const StatSet &llc = cmp.llc().stats();
    b.llcAccesses = statOr(llc, {"accesses"});
    b.llcTagMisses = statOr(llc, {"tagMisses"});
    b.llcDataHits = statOr(llc, {"dataHits", "tagHitsData"});
    b.llcTagOnlyHits = statOr(llc, {"tagOnlyHits", "tagHitsTagOnly"});
    for (const auto &ch : cmp.memory().channels()) {
        b.dramReads += statOr(ch->stats(), {"reads"});
        b.dramWrites += statOr(ch->stats(), {"writes"});
        b.dramRowHits += statOr(ch->stats(), {"rowHits"});
    }
    return b;
}

void
EpochSampler::attach(Cmp &cmp)
{
    if (!primed) {
        base = readCounters(cmp);
        windowStart = cmp.now();
        primed = true;
    } else if (base.instr.size() != cmp.numCores()) {
        throwSimError(SimError::Kind::Snapshot,
                      "sampler state carries %zu cores, this system has "
                      "%u", base.instr.size(), cmp.numCores());
    }
    cmp.setSampleHook(every, [this](const Cmp &c, Cycle boundary) {
        pushRow(c, boundary);
    });
}

void
EpochSampler::pushRow(const Cmp &cmp, Cycle boundary)
{
    const Baseline cur = readCounters(cmp);
    EpochSample row;
    row.epochEnd = boundary;
    row.refs = sub(cur.refs, base.refs);
    const std::size_t n = cur.instr.size();
    row.instr.resize(n);
    row.l1Miss.resize(n);
    row.l2Miss.resize(n);
    row.llcMiss.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
        row.instr[c] = sub(cur.instr[c], base.instr[c]);
        row.l1Miss[c] = sub(cur.l1Miss[c], base.l1Miss[c]);
        row.l2Miss[c] = sub(cur.l2Miss[c], base.l2Miss[c]);
        row.llcMiss[c] = sub(cur.llcMiss[c], base.llcMiss[c]);
    }
    row.llcAccesses = sub(cur.llcAccesses, base.llcAccesses);
    row.llcTagMisses = sub(cur.llcTagMisses, base.llcTagMisses);
    row.llcDataHits = sub(cur.llcDataHits, base.llcDataHits);
    row.llcTagOnlyHits = sub(cur.llcTagOnlyHits, base.llcTagOnlyHits);
    row.dramReads = sub(cur.dramReads, base.dramReads);
    row.dramWrites = sub(cur.dramWrites, base.dramWrites);
    row.dramRowHits = sub(cur.dramRowHits, base.dramRowHits);
    row.dataResident = cmp.llc().dataLinesResident();
    row.dataTotal = cmp.llc().dataLinesTotal();
    for (const auto &mshr : cmp.crossbar().mshrs())
        row.mshrInFlight += mshr->inFlightAt(boundary);
    samples.push_back(std::move(row));
    base = cur;
}

void
EpochSampler::finish(const Cmp &cmp, Cycle now)
{
    const Cycle lastEnd =
        samples.empty() ? windowStart : samples.back().epochEnd;
    const bool moved = cmp.referencesProcessed() != base.refs;
    if (now > lastEnd && moved)
        pushRow(cmp, now);
}

void
EpochSampler::attachLiveFractions(const std::vector<GenRecord> &records,
                                  std::uint64_t capacity_lines)
{
    if (capacity_lines == 0)
        return;
    for (EpochSample &row : samples) {
        std::uint64_t live = 0;
        for (const GenRecord &g : records) {
            if (g.fill <= row.epochEnd && row.epochEnd < g.lastHit)
                ++live;
        }
        row.liveFraction =
            static_cast<double>(live) / static_cast<double>(capacity_lines);
    }
}

void
EpochSampler::writeCsv(std::ostream &os) const
{
    const std::size_t n = samples.empty() ? 0 : samples[0].instr.size();
    os << "epoch_end,epoch_cycles,refs,llc_accesses,llc_tag_misses,"
          "llc_data_hits,llc_tag_only_hits,llc_tag_hit_rate,"
          "llc_data_hit_rate,data_resident,data_total,data_occupancy,"
          "live_fraction,dram_reads,dram_writes,dram_row_hits,"
          "dram_row_hit_rate,dram_lines_per_kcycle,mshr_inflight";
    for (std::size_t c = 0; c < n; ++c)
        os << ",instr" << c << ",l1_miss" << c << ",l2_miss" << c
           << ",llc_miss" << c << ",llc_mpki" << c;
    os << "\n";

    Cycle prevEnd = windowStart;
    for (const EpochSample &row : samples) {
        const double cycles =
            static_cast<double>(row.epochEnd - prevEnd);
        const double drams =
            static_cast<double>(row.dramReads + row.dramWrites);
        os << row.epochEnd << ',' << (row.epochEnd - prevEnd) << ','
           << row.refs << ',' << row.llcAccesses << ','
           << row.llcTagMisses << ',' << row.llcDataHits << ','
           << row.llcTagOnlyHits << ',';
        putRatio(os, static_cast<double>(row.llcAccesses -
                                         row.llcTagMisses),
                 static_cast<double>(row.llcAccesses));
        os << ',';
        putRatio(os, static_cast<double>(row.llcDataHits),
                 static_cast<double>(row.llcAccesses));
        os << ',' << row.dataResident << ',' << row.dataTotal << ',';
        putRatio(os, static_cast<double>(row.dataResident),
                 static_cast<double>(row.dataTotal));
        os << ',';
        if (row.liveFraction >= 0.0)
            os << row.liveFraction;
        else
            os << "nan";
        os << ',' << row.dramReads << ',' << row.dramWrites << ','
           << row.dramRowHits << ',';
        putRatio(os, static_cast<double>(row.dramRowHits), drams);
        os << ',';
        putRatio(os, drams * 1000.0, cycles);
        os << ',' << row.mshrInFlight;
        for (std::size_t c = 0; c < row.instr.size(); ++c) {
            os << ',' << row.instr[c] << ',' << row.l1Miss[c] << ','
               << row.l2Miss[c] << ',' << row.llcMiss[c] << ',';
            putRatio(os, static_cast<double>(row.llcMiss[c]) * 1000.0,
                     static_cast<double>(row.instr[c]));
        }
        os << "\n";
        prevEnd = row.epochEnd;
    }
}

void
EpochSampler::writeJson(std::ostream &os) const
{
    os << "[";
    bool firstRow = true;
    for (const EpochSample &row : samples) {
        os << (firstRow ? "" : ",") << "\n  {\"epochEnd\": "
           << row.epochEnd << ", \"refs\": " << row.refs
           << ", \"llcAccesses\": " << row.llcAccesses
           << ", \"llcTagMisses\": " << row.llcTagMisses
           << ", \"llcDataHits\": " << row.llcDataHits
           << ", \"llcTagOnlyHits\": " << row.llcTagOnlyHits
           << ", \"dataResident\": " << row.dataResident
           << ", \"dataTotal\": " << row.dataTotal
           << ", \"liveFraction\": ";
        if (row.liveFraction >= 0.0)
            os << row.liveFraction;
        else
            os << "null";
        os << ", \"dramReads\": " << row.dramReads
           << ", \"dramWrites\": " << row.dramWrites
           << ", \"dramRowHits\": " << row.dramRowHits
           << ", \"mshrInFlight\": " << row.mshrInFlight
           << ", \"instr\": [";
        for (std::size_t c = 0; c < row.instr.size(); ++c)
            os << (c ? "," : "") << row.instr[c];
        os << "], \"llcMiss\": [";
        for (std::size_t c = 0; c < row.llcMiss.size(); ++c)
            os << (c ? "," : "") << row.llcMiss[c];
        os << "]}";
        firstRow = false;
    }
    os << "\n]\n";
}

void
EpochSampler::save(Serializer &s) const
{
    s.beginSection("sampler");
    s.putU64(every);
    s.putU64(windowStart);
    s.putBool(primed);
    s.putU64(base.refs);
    saveVecU64(s, base.instr);
    saveVecU64(s, base.l1Miss);
    saveVecU64(s, base.l2Miss);
    saveVecU64(s, base.llcMiss);
    s.putU64(base.llcAccesses);
    s.putU64(base.llcTagMisses);
    s.putU64(base.llcDataHits);
    s.putU64(base.llcTagOnlyHits);
    s.putU64(base.dramReads);
    s.putU64(base.dramWrites);
    s.putU64(base.dramRowHits);
    s.putU64(samples.size());
    for (const EpochSample &row : samples) {
        s.putU64(row.epochEnd);
        s.putU64(row.refs);
        saveVecU64(s, row.instr);
        saveVecU64(s, row.l1Miss);
        saveVecU64(s, row.l2Miss);
        saveVecU64(s, row.llcMiss);
        s.putU64(row.llcAccesses);
        s.putU64(row.llcTagMisses);
        s.putU64(row.llcDataHits);
        s.putU64(row.llcTagOnlyHits);
        s.putU64(row.dramReads);
        s.putU64(row.dramWrites);
        s.putU64(row.dramRowHits);
        s.putU64(row.dataResident);
        s.putU64(row.dataTotal);
        s.putU64(row.mshrInFlight);
    }
    s.endSection();
}

void
EpochSampler::restore(Deserializer &d)
{
    d.beginSection("sampler");
    const std::uint64_t ckEvery = d.getU64();
    if (ckEvery != every)
        throwSimError(SimError::Kind::Snapshot,
                      "sampler state was taken at a %llu-cycle interval, "
                      "this run samples every %llu",
                      static_cast<unsigned long long>(ckEvery),
                      static_cast<unsigned long long>(every));
    windowStart = d.getU64();
    primed = d.getBool();
    base.refs = d.getU64();
    restoreVecU64(d, base.instr);
    restoreVecU64(d, base.l1Miss);
    restoreVecU64(d, base.l2Miss);
    restoreVecU64(d, base.llcMiss);
    base.llcAccesses = d.getU64();
    base.llcTagMisses = d.getU64();
    base.llcDataHits = d.getU64();
    base.llcTagOnlyHits = d.getU64();
    base.dramReads = d.getU64();
    base.dramWrites = d.getU64();
    base.dramRowHits = d.getU64();
    samples.resize(d.getU64());
    for (EpochSample &row : samples) {
        row.epochEnd = d.getU64();
        row.refs = d.getU64();
        restoreVecU64(d, row.instr);
        restoreVecU64(d, row.l1Miss);
        restoreVecU64(d, row.l2Miss);
        restoreVecU64(d, row.llcMiss);
        row.llcAccesses = d.getU64();
        row.llcTagMisses = d.getU64();
        row.llcDataHits = d.getU64();
        row.llcTagOnlyHits = d.getU64();
        row.dramReads = d.getU64();
        row.dramWrites = d.getU64();
        row.dramRowHits = d.getU64();
        row.dataResident = d.getU64();
        row.dataTotal = d.getU64();
        row.mshrInFlight = d.getU64();
    }
    d.endSection();
}

} // namespace rc
