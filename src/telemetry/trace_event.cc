#include "telemetry/trace_event.hh"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "common/log.hh"
#include "common/stats.hh"

namespace rc
{

namespace
{

thread_local EventTracer *currentTracer = nullptr;

/**
 * Thread-local cache of the ring claimed from a specific tracer, so the
 * registry mutex is taken once per (thread, tracer) pair instead of per
 * event.  Keyed by the tracer's process-unique serial, not its address:
 * a later tracer allocated where a destroyed one lived must not match a
 * stale cache entry.
 */
struct RingCache
{
    std::uint64_t ownerSerial = 0; //!< 0 = empty (serials start at 1)
    void *ring = nullptr;
};

thread_local RingCache ringCache;

std::atomic<std::uint64_t> nextTracerSerial{1};

/** Magic prefix of the binary spill scratch file. */
constexpr char kSpillMagic[8] = {'R', 'C', 'T', 'R', 'A', 'C', 'E', '1'};

/** Fixed-size spill record (little-endian host layout; same-process
 *  readback only, so no byte-order handling is needed). */
struct SpillRecord
{
    std::uint32_t nameId;
    std::uint8_t domain;
    std::uint8_t pad[3];
    std::uint32_t track;
    std::uint64_t ts;
    std::uint64_t dur;
    std::uint64_t arg;
};
static_assert(sizeof(SpillRecord) == 36 || sizeof(SpillRecord) == 40,
              "SpillRecord layout drifted");

} // namespace

EventTracer::EventTracer(Config cfg_)
    : cfg(std::move(cfg_)), birth(std::chrono::steady_clock::now()),
      serial(nextTracerSerial.fetch_add(1, std::memory_order_relaxed))
{
    if (cfg.ringCapacity == 0)
        cfg.ringCapacity = 1;
    if (!cfg.spillPath.empty()) {
        spill = std::fopen(cfg.spillPath.c_str(), "w+b");
        if (!spill) {
            RC_WARN_ONCE("cannot open trace spill file '%s'; overflowing "
                         "events will be dropped instead",
                         cfg.spillPath.c_str());
        } else {
            std::fwrite(kSpillMagic, sizeof(kSpillMagic), 1, spill);
        }
    }
}

EventTracer::~EventTracer()
{
    if (spill) {
        std::fclose(spill);
        std::remove(cfg.spillPath.c_str());
    }
    if (ringCache.ownerSerial == serial)
        ringCache = RingCache{};
    if (currentTracer == this)
        currentTracer = nullptr;
}

EventTracer *
EventTracer::current()
{
    return currentTracer;
}

EventTracer *
EventTracer::setCurrent(EventTracer *tracer)
{
    EventTracer *prev = currentTracer;
    currentTracer = tracer;
    return prev;
}

EventTracer::Ring &
EventTracer::ringForThisThread()
{
    if (ringCache.ownerSerial == serial)
        return *static_cast<Ring *>(ringCache.ring);
    std::lock_guard<std::mutex> lock(mu);
    rings.push_back(std::make_unique<Ring>());
    Ring &ring = *rings.back();
    ring.events.resize(cfg.ringCapacity);
    ringCache.ownerSerial = serial;
    ringCache.ring = &ring;
    return ring;
}

void
EventTracer::record(const char *name, TraceDomain domain,
                    std::uint32_t track, std::uint64_t ts,
                    std::uint64_t dur, std::uint64_t arg)
{
    Ring &ring = ringForThisThread();
    if (ring.count == ring.events.size()) {
        if (spill) {
            std::lock_guard<std::mutex> lock(mu);
            spillRingLocked(ring);
        } else {
            lost.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }
    TraceEvent &ev = ring.events[ring.count++];
    ev.name = name;
    ev.ts = ts;
    ev.dur = dur;
    ev.arg = arg;
    ev.track = track;
    ev.domain = domain;
    accepted.fetch_add(1, std::memory_order_relaxed);
}

void
EventTracer::recordHost(const char *name, std::uint32_t track,
                        std::uint64_t dur_micros, std::uint64_t arg)
{
    const std::uint64_t now = hostNowMicros();
    const std::uint64_t start = dur_micros < now ? now - dur_micros : 0;
    record(name, TraceDomain::Host, track, start, dur_micros, arg);
}

std::uint64_t
EventTracer::hostNowMicros() const
{
    const auto delta = std::chrono::steady_clock::now() - birth;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(delta)
            .count());
}

void
EventTracer::spillRingLocked(Ring &ring)
{
    for (std::size_t i = 0; i < ring.count; ++i) {
        const TraceEvent &ev = ring.events[i];
        std::uint32_t id = 0;
        for (; id < nameTable.size(); ++id) {
            if (nameTable[id] == ev.name)
                break;
        }
        if (id == nameTable.size())
            nameTable.push_back(ev.name);
        SpillRecord rec{};
        rec.nameId = id;
        rec.domain = static_cast<std::uint8_t>(ev.domain);
        rec.track = ev.track;
        rec.ts = ev.ts;
        rec.dur = ev.dur;
        rec.arg = ev.arg;
        if (std::fwrite(&rec, sizeof(rec), 1, spill) != 1) {
            RC_WARN_ONCE("trace spill write failed; dropping overflowing "
                         "events from here on");
            std::fclose(spill);
            std::remove(cfg.spillPath.c_str());
            spill = nullptr;
            lost.fetch_add(ring.count - i, std::memory_order_relaxed);
            accepted.fetch_sub(ring.count - i, std::memory_order_relaxed);
            ring.count = 0;
            return;
        }
    }
    spilledCount.fetch_add(ring.count, std::memory_order_relaxed);
    ring.count = 0;
}

void
EventTracer::collectAll(std::vector<TraceEvent> &out)
{
    std::lock_guard<std::mutex> lock(mu);
    if (spill) {
        std::fflush(spill);
        std::fseek(spill, sizeof(kSpillMagic), SEEK_SET);
        SpillRecord rec;
        while (std::fread(&rec, sizeof(rec), 1, spill) == 1) {
            TraceEvent ev;
            if (rec.nameId >= nameTable.size()) {
                RC_WARN_ONCE("trace spill carries unknown name id %u; "
                             "record skipped", rec.nameId);
                continue;
            }
            ev.name = nameTable[rec.nameId];
            ev.domain = static_cast<TraceDomain>(rec.domain);
            ev.track = rec.track;
            ev.ts = rec.ts;
            ev.dur = rec.dur;
            ev.arg = rec.arg;
            out.push_back(ev);
        }
        std::fseek(spill, 0, SEEK_END);
    }
    for (const auto &ring : rings)
        out.insert(out.end(), ring->events.begin(),
                   ring->events.begin()
                       + static_cast<std::ptrdiff_t>(ring->count));
}

void
EventTracer::exportChromeJson(std::ostream &os)
{
    std::vector<TraceEvent> all;
    collectAll(all);

    // Perfetto requires timestamps within a track to be non-decreasing;
    // spilled batches and per-thread rings interleave arbitrarily, so
    // order each (pid, tid) track here.  stable_sort keeps same-cycle
    // events in recording order.
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.domain != b.domain)
                             return a.domain < b.domain;
                         if (a.track != b.track)
                             return a.track < b.track;
                         return a.ts < b.ts;
                     });

    os << "{\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":"
       << static_cast<int>(TraceDomain::Sim)
       << ",\"args\":{\"name\":\"simulated (cycles)\"}},\n";
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":"
       << static_cast<int>(TraceDomain::Host)
       << ",\"args\":{\"name\":\"host (us)\"}}";
    for (const TraceEvent &ev : all) {
        os << ",\n{\"name\":\"" << jsonEscape(ev.name ? ev.name : "?")
           << "\",\"pid\":" << static_cast<int>(ev.domain)
           << ",\"tid\":" << ev.track
           << ",\"ts\":" << ev.ts;
        if (ev.dur > 0)
            os << ",\"ph\":\"X\",\"dur\":" << ev.dur;
        else
            os << ",\"ph\":\"i\",\"s\":\"t\"";
        os << ",\"args\":{\"v\":" << ev.arg << "}}";
    }
    os << "\n],\"displayTimeUnit\":\"ns\"";
    const std::uint64_t nlost = dropped();
    if (nlost)
        os << ",\"metadata\":{\"droppedEvents\":" << nlost << "}";
    os << "}\n";
}

} // namespace rc
