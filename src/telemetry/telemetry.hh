/**
 * @file
 * Per-run telemetry session: owns the event tracer and epoch sampler
 * selected by the harness flags and writes their artifacts at run end.
 *
 * A session produces up to three files under its output directory, all
 * suffixed with the run's tag so --jobs=N sweeps never collide:
 *  - trace-<tag>.json   Chrome trace_event JSON (Perfetto-loadable)
 *  - epochs-<tag>.csv   epoch-delta time series
 *  - stats-<tag>.json   end-of-run counter dump (writeStatsJson)
 *
 * Construction installs the tracer on the calling thread; destruction
 * uninstalls it and flushes the trace even when the run is unwinding on
 * an exception, so a quarantined run still leaves its partial trace
 * behind for diagnosis.
 */

#ifndef RC_TELEMETRY_TELEMETRY_HH
#define RC_TELEMETRY_TELEMETRY_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/types.hh"
#include "telemetry/epoch_sampler.hh"
#include "telemetry/trace_event.hh"

namespace rc
{

class Cmp;

/** Harness-level telemetry selection (parsed from the CLI flags). */
struct TelemetryConfig
{
    std::string dir;            //!< output directory ("" = telemetry off)
    bool traceEvents = false;   //!< --trace-events
    Cycle sampleInterval = 0;   //!< --sample-interval=N (0 = off)
    std::size_t ringCapacity = 1 << 16; //!< tracer ring size (tests)

    /** Whether any telemetry pillar is active. */
    bool enabled() const
    {
        return !dir.empty() && (traceEvents || sampleInterval != 0);
    }
};

/**
 * Dump every counter the system carries as one JSON document: the SLLC
 * set, per-channel DRAM sets, per-bank MSHR sets, per-core private
 * hierarchy sets, plus derived end-of-run metrics (IPC, MPKI, cycles).
 */
void writeStatsJson(const Cmp &cmp, std::ostream &os);

/** One run's telemetry; see the file comment. */
class TelemetrySession
{
  public:
    /**
     * @param cfg what to collect and where.
     * @param tag run-unique file suffix ("b0-r3", "solo", ...).
     */
    TelemetrySession(const TelemetryConfig &cfg, const std::string &tag);

    /** Uninstalls the tracer; writes the trace if finalize() never ran. */
    ~TelemetrySession();

    TelemetrySession(const TelemetrySession &) = delete;
    TelemetrySession &operator=(const TelemetrySession &) = delete;

    /** Install the epoch-sampling hook (after any checkpoint restore). */
    void attach(Cmp &cmp);

    /** The tracer, for host-phase events (nullptr when tracing is off). */
    EventTracer *tracer() { return eventTracer.get(); }

    /** The sampler (nullptr when sampling is off). */
    EpochSampler *sampler() { return epochSampler.get(); }

    /**
     * Close the run: emit the sampler's residual epoch at @p now and
     * write every artifact file.
     */
    void finalize(const Cmp &cmp, Cycle now);

  private:
    void writeTrace();

    TelemetryConfig cfg;
    std::string tag;
    std::unique_ptr<EventTracer> eventTracer;
    std::unique_ptr<EpochSampler> epochSampler;
    EventTracer *prevTracer = nullptr;
    bool traceWritten = false;
};

} // namespace rc

#endif // RC_TELEMETRY_TELEMETRY_HH
