/**
 * @file
 * Cycle-cadence stat sampling (the telemetry time-series pillar).
 *
 * The sampler hooks Cmp::setSampleHook and, once per epoch of simulated
 * cycles, snapshots the delta of every tracked counter since the
 * previous epoch: per-core instructions and miss counts (MPKI), SLLC
 * tag/data hit breakdown, DRAM traffic and row hits, plus two
 * instantaneous gauges (data-array occupancy, MSHR in-flight count).
 * finish() emits one residual partial epoch so that summing any delta
 * column over all rows reproduces the end-of-run aggregate exactly.
 *
 * The row set and counter baselines serialize through the snapshot
 * layer, so a run resumed from a checkpoint rewrites the complete CSV,
 * including epochs sampled before the crash.
 */

#ifndef RC_TELEMETRY_EPOCH_SAMPLER_HH
#define RC_TELEMETRY_EPOCH_SAMPLER_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"

namespace rc
{

class Cmp;
class Serializer;
class Deserializer;
struct GenRecord;

/** Deltas over one epoch, plus instantaneous gauges at its boundary. */
struct EpochSample
{
    Cycle epochEnd = 0;        //!< boundary cycle (row timestamp)
    std::uint64_t refs = 0;    //!< references completed this epoch

    // Per-core deltas, indexed by core id.
    std::vector<std::uint64_t> instr;
    std::vector<std::uint64_t> l1Miss;
    std::vector<std::uint64_t> l2Miss;
    std::vector<std::uint64_t> llcMiss;

    // SLLC deltas (hit categories absent from an organization read 0).
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcTagMisses = 0;
    std::uint64_t llcDataHits = 0;
    std::uint64_t llcTagOnlyHits = 0;

    // DRAM deltas summed over channels.
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramRowHits = 0;

    // Instantaneous gauges at the epoch boundary.
    std::uint64_t dataResident = 0;
    std::uint64_t dataTotal = 0;
    std::uint64_t mshrInFlight = 0;

    /**
     * Live-line fraction at the boundary; negative until
     * EpochSampler::attachLiveFractions() fills it (liveness is future
     * knowledge, so it can only be computed after the run).
     */
    double liveFraction = -1.0;
};

/** Epoch-delta sampler; see the file comment. */
class EpochSampler
{
  public:
    /** @param interval_cycles epoch length in simulated cycles. */
    explicit EpochSampler(Cycle interval_cycles);

    /**
     * Capture counter baselines from @p cmp's current state and install
     * the sample hook.  Call after any checkpoint restore (restored
     * counters then seed the baselines) and keep this sampler alive
     * until the Cmp is done running.
     */
    void attach(Cmp &cmp);

    /**
     * Close the time series: emit the residual partial epoch covering
     * (last boundary, now] when anything moved since.  Column sums over
     * all rows then equal end-of-run aggregates minus the attach-time
     * baselines.
     */
    void finish(const Cmp &cmp, Cycle now);

    /** Epoch length in force. */
    Cycle interval() const { return every; }

    /** Rows sampled so far. */
    const std::vector<EpochSample> &rows() const { return samples; }

    /**
     * Fill each row's liveFraction from a GenerationTracker's completed
     * records: the fraction of @p capacity_lines lines whose live
     * interval [fill, lastHit) covers the row boundary.  Optional —
     * rows keep liveFraction < 0 (rendered as "nan") when no tracker
     * observed the run.
     */
    void attachLiveFractions(const std::vector<GenRecord> &records,
                             std::uint64_t capacity_lines);

    /**
     * Write the series as CSV: a header line, then one row per epoch.
     * Ratio columns (hit rates, occupancy, MPKI) are derived from the
     * delta columns at write time; empty denominators render as "nan".
     */
    void writeCsv(std::ostream &os) const;

    /** Write the series as a JSON array of per-epoch objects. */
    void writeJson(std::ostream &os) const;

    /** Checkpoint baselines and sampled rows. */
    void save(Serializer &s) const;

    /** Restore a save()'d image; throws SimError(Snapshot) when the
     *  checkpointed shape (interval, core count) disagrees. */
    void restore(Deserializer &d);

  private:
    /** Absolute counter values a delta is computed against. */
    struct Baseline
    {
        std::uint64_t refs = 0;
        std::vector<std::uint64_t> instr;
        std::vector<std::uint64_t> l1Miss;
        std::vector<std::uint64_t> l2Miss;
        std::vector<std::uint64_t> llcMiss;
        std::uint64_t llcAccesses = 0;
        std::uint64_t llcTagMisses = 0;
        std::uint64_t llcDataHits = 0;
        std::uint64_t llcTagOnlyHits = 0;
        std::uint64_t dramReads = 0;
        std::uint64_t dramWrites = 0;
        std::uint64_t dramRowHits = 0;
    };

    Baseline readCounters(const Cmp &cmp) const;
    void pushRow(const Cmp &cmp, Cycle boundary);

    Cycle every;
    Cycle windowStart = 0; //!< cycle of attach (first row's delta base)
    bool primed = false;   //!< baselines captured (attach or restore)
    Baseline base;
    std::vector<EpochSample> samples;
};

} // namespace rc

#endif // RC_TELEMETRY_EPOCH_SAMPLER_HH
