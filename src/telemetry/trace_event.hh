/**
 * @file
 * Low-overhead event tracer with Chrome trace_event JSON export.
 *
 * Events carry one of two clock domains, rendered as two Perfetto
 * "processes" in the exported trace:
 *  - TraceDomain::Sim  (pid 1): timestamps are simulated cycles
 *    (cache/DRAM/coherence events);
 *  - TraceDomain::Host (pid 2): timestamps are host microseconds since
 *    tracer construction (harness phases: run start/finish, checkpoint
 *    writes, quarantine retries).
 *
 * Recording is lock-free on the hot path: each thread owns a
 * fixed-capacity ring buffer (claimed once through a mutex-guarded
 * registry, then cached thread-locally).  When a ring fills it either
 * spills to a binary scratch file (when a spill path is configured) or
 * drops the newest events and counts them, so tracing can never grow
 * memory without bound.  exportChromeJson() merges rings and spill,
 * sorts each (pid, tid) track by timestamp and writes JSON loadable by
 * Perfetto / chrome://tracing.
 *
 * Gating is two-level: the RC_TRACE_ENABLED compile-time macro removes
 * the RC_TEVENT hook entirely (configure with -DRC_TRACE=OFF), and at
 * runtime the hook is two loads and a branch unless a tracer is both
 * installed on the calling thread and enabled (bench/micro_telemetry
 * keeps both paths honest).
 */

#ifndef RC_TELEMETRY_TRACE_EVENT_HH
#define RC_TELEMETRY_TRACE_EVENT_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hh"

// Compile-time gate: -DRC_TRACE=OFF in CMake defines RC_TRACE_ENABLED=0
// and every RC_TEVENT site compiles to nothing.
#ifndef RC_TRACE_ENABLED
#define RC_TRACE_ENABLED 1
#endif

namespace rc
{

/** Clock domain of a trace event (doubles as the exported pid). */
enum class TraceDomain : std::uint8_t
{
    Sim = 1,  //!< timestamps in simulated cycles
    Host = 2, //!< timestamps in host microseconds since tracer birth
};

/** One recorded event.  @c name must have static storage duration. */
struct TraceEvent
{
    const char *name = nullptr; //!< static string ("rc.dataHit", ...)
    std::uint64_t ts = 0;       //!< cycles (Sim) or microseconds (Host)
    std::uint64_t dur = 0;      //!< 0 renders as an instant event
    std::uint64_t arg = 0;      //!< one numeric payload ("v" in args)
    std::uint32_t track = 0;    //!< exported tid (core id, bank id, ...)
    TraceDomain domain = TraceDomain::Sim;
};

/** Tracer sizing and overflow policy. */
struct TracerConfig
{
    /** Events per thread ring before spill/drop. */
    std::size_t ringCapacity = 1 << 16;

    /**
     * Binary scratch file absorbing ring overflow ("" = drop newest on
     * overflow instead).  The file is an implementation detail of the
     * tracer (deleted by its destructor), not an archival format.
     */
    std::string spillPath;
};

/** Per-run event tracer; see the file comment. */
class EventTracer
{
  public:
    using Config = TracerConfig;

    explicit EventTracer(Config cfg = Config());
    ~EventTracer();

    EventTracer(const EventTracer &) = delete;
    EventTracer &operator=(const EventTracer &) = delete;

    /** Runtime gate consulted by the RC_TEVENT hook. */
    bool enabled() const { return on.load(std::memory_order_relaxed); }

    /** Flip the runtime gate (construction leaves it on). */
    void setEnabled(bool enable)
    {
        on.store(enable, std::memory_order_relaxed);
    }

    /** Record one event into the calling thread's ring. */
    void record(const char *name, TraceDomain domain, std::uint32_t track,
                std::uint64_t ts, std::uint64_t dur = 0,
                std::uint64_t arg = 0);

    /**
     * Record a host-domain event timestamped now; @p dur_micros spans
     * backwards-from-now when nonzero (callers time a phase and report
     * it at its end).
     */
    void recordHost(const char *name, std::uint32_t track,
                    std::uint64_t dur_micros = 0, std::uint64_t arg = 0);

    /** Microseconds of host time since this tracer was constructed. */
    std::uint64_t hostNowMicros() const;

    /** Events accepted (rings + spill). */
    std::uint64_t recorded() const
    {
        return accepted.load(std::memory_order_relaxed);
    }

    /** Events dropped because a ring overflowed with no spill file. */
    std::uint64_t dropped() const
    {
        return lost.load(std::memory_order_relaxed);
    }

    /** Events currently spilled to the scratch file. */
    std::uint64_t spilled() const
    {
        return spilledCount.load(std::memory_order_relaxed);
    }

    /**
     * Write the complete trace as Chrome trace_event JSON: process-name
     * metadata for both clock domains, then every event with each
     * (pid, tid) track sorted by timestamp.  Call after the traced work
     * finished (not concurrently with record()).
     */
    void exportChromeJson(std::ostream &os);

    /** The tracer installed on the calling thread (nullptr = none). */
    static EventTracer *current();

    /**
     * Install @p tracer as the calling thread's tracer and return the
     * previous one.  Prefer ScopedTracer.
     */
    static EventTracer *setCurrent(EventTracer *tracer);

  private:
    struct Ring
    {
        std::vector<TraceEvent> events; //!< filled [0, count)
        std::size_t count = 0;
    };

    Ring &ringForThisThread();
    void spillRingLocked(Ring &ring);
    void collectAll(std::vector<TraceEvent> &out);

    Config cfg;
    std::atomic<bool> on{true};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> lost{0};
    std::atomic<std::uint64_t> spilledCount{0};
    std::chrono::steady_clock::time_point birth;

    std::mutex mu; //!< guards rings registry and the spill file
    std::vector<std::unique_ptr<Ring>> rings;
    std::FILE *spill = nullptr;

    /**
     * Process-unique id distinguishing this tracer from any other that
     * may later be allocated at the same address (the thread-local ring
     * cache keys on it, so a stale cache can never alias a new tracer).
     */
    std::uint64_t serial;

    /** Name interning for the binary spill format (ids are per-tracer). */
    std::vector<const char *> nameTable;
};

/** RAII installer for the calling thread's tracer. */
class ScopedTracer
{
  public:
    explicit ScopedTracer(EventTracer *tracer)
        : prev(EventTracer::setCurrent(tracer))
    {}

    ~ScopedTracer() { EventTracer::setCurrent(prev); }

    ScopedTracer(const ScopedTracer &) = delete;
    ScopedTracer &operator=(const ScopedTracer &) = delete;

  private:
    EventTracer *prev;
};

/**
 * The hot-path hook: record an event against the calling thread's
 * tracer when one is installed and enabled.  Arguments after the name
 * are (domain, track, ts[, dur[, arg]]).  With RC_TRACE_ENABLED=0 the
 * site compiles away entirely.
 */
#if RC_TRACE_ENABLED
#define RC_TEVENT(name_, ...)                                                 \
    do {                                                                      \
        ::rc::EventTracer *rc_tev_ = ::rc::EventTracer::current();            \
        if (rc_tev_ && rc_tev_->enabled())                                    \
            rc_tev_->record((name_), __VA_ARGS__);                            \
    } while (0)
#else
#define RC_TEVENT(name_, ...) ((void)0)
#endif

} // namespace rc

#endif // RC_TELEMETRY_TRACE_EVENT_HH
