#include "telemetry/telemetry.hh"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <fstream>
#include <ostream>

#include "common/log.hh"
#include "common/stats.hh"
#include "mem/dram.hh"
#include "sim/cmp.hh"

namespace rc
{

namespace
{

void
ensureTelemetryDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        RC_WARN_ONCE("cannot create telemetry directory '%s'; artifact "
                     "writes will likely fail", dir.c_str());
}

} // namespace

void
writeStatsJson(const Cmp &cmp, std::ostream &os)
{
    os << "{\n  \"organization\": \"" << jsonEscape(cmp.llc().describe())
       << "\",\n  \"cycles\": " << cmp.now()
       << ",\n  \"references\": " << cmp.referencesProcessed()
       << ",\n  \"measuredCycles\": " << cmp.measuredCycles()
       << ",\n  \"aggregateIpc\": " << cmp.aggregateIpc()
       << ",\n  \"dataLinesResident\": " << cmp.llc().dataLinesResident()
       << ",\n  \"dataLinesTotal\": " << cmp.llc().dataLinesTotal()
       << ",\n  \"llc\":\n";
    cmp.llc().stats().dumpJson(os, 2);
    os << ",\n  \"cores\": [\n";
    for (std::uint32_t c = 0; c < cmp.numCores(); ++c) {
        const MpkiTriple mpki = cmp.measuredMpki(c);
        os << (c ? ",\n" : "") << "    {\"id\": " << c
           << ", \"workload\": \""
           << jsonEscape(cmp.core(c).workloadLabel())
           << "\", \"instructions\": " << cmp.core(c).instructions()
           << ", \"ipc\": " << cmp.ipc(c)
           << ", \"mpkiL1\": " << mpki.l1
           << ", \"mpkiL2\": " << mpki.l2
           << ", \"mpkiLlc\": " << mpki.llc
           << ", \"stats\":\n";
        cmp.core(c).priv().stats().dumpJson(os, 4);
        os << "}";
    }
    os << "\n  ],\n  \"dram\": [\n";
    const auto &channels = cmp.memory().channels();
    for (std::size_t i = 0; i < channels.size(); ++i) {
        if (i)
            os << ",\n";
        channels[i]->stats().dumpJson(os, 4);
    }
    os << "\n  ],\n  \"mshr\": [\n";
    const auto &mshrs = cmp.crossbar().mshrs();
    for (std::size_t i = 0; i < mshrs.size(); ++i) {
        if (i)
            os << ",\n";
        mshrs[i]->stats().dumpJson(os, 4);
    }
    os << "\n  ]\n}\n";
}

TelemetrySession::TelemetrySession(const TelemetryConfig &cfg_,
                                   const std::string &tag_)
    : cfg(cfg_), tag(tag_)
{
    if (!cfg.enabled())
        return;
    ensureTelemetryDir(cfg.dir);
    if (cfg.traceEvents) {
        EventTracer::Config tcfg;
        tcfg.ringCapacity = cfg.ringCapacity;
        tcfg.spillPath = cfg.dir + "/trace-" + tag + ".spill";
        eventTracer = std::make_unique<EventTracer>(tcfg);
        prevTracer = EventTracer::setCurrent(eventTracer.get());
    }
    if (cfg.sampleInterval != 0)
        epochSampler = std::make_unique<EpochSampler>(cfg.sampleInterval);
}

TelemetrySession::~TelemetrySession()
{
    if (eventTracer) {
        EventTracer::setCurrent(prevTracer);
        // A run that unwound on an exception never reached finalize();
        // its partial trace is exactly what a post-mortem wants.
        if (!traceWritten)
            writeTrace();
    }
}

void
TelemetrySession::attach(Cmp &cmp)
{
    if (epochSampler)
        epochSampler->attach(cmp);
}

void
TelemetrySession::writeTrace()
{
    const std::string path = cfg.dir + "/trace-" + tag + ".json";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write trace '%s'", path.c_str());
        return;
    }
    eventTracer->exportChromeJson(out);
    traceWritten = true;
    if (eventTracer->dropped() != 0)
        warn("trace '%s' dropped %llu events (raise the ring capacity "
             "or keep the spill file writable)", path.c_str(),
             static_cast<unsigned long long>(eventTracer->dropped()));
}

void
TelemetrySession::finalize(const Cmp &cmp, Cycle now)
{
    if (epochSampler) {
        epochSampler->finish(cmp, now);
        const std::string path = cfg.dir + "/epochs-" + tag + ".csv";
        std::ofstream out(path);
        if (out)
            epochSampler->writeCsv(out);
        else
            warn("cannot write epoch series '%s'", path.c_str());
    }
    if (cfg.traceEvents || cfg.sampleInterval != 0) {
        const std::string path = cfg.dir + "/stats-" + tag + ".json";
        std::ofstream out(path);
        if (out)
            writeStatsJson(cmp, out);
        else
            warn("cannot write stats dump '%s'", path.c_str());
    }
    if (eventTracer)
        writeTrace();
}

} // namespace rc
