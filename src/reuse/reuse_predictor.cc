#include "reuse/reuse_predictor.hh"

#include "common/bitops.hh"
#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

namespace
{

constexpr std::uint8_t counterMax = 3;
constexpr std::uint8_t takenThreshold = 2;

} // namespace

ReusePredictor::ReusePredictor(std::uint32_t entries)
{
    RC_ASSERT(entries > 0, "predictor needs at least one entry");
    std::uint32_t size = 1;
    while (size < entries)
        size <<= 1;
    // Initialize weakly not-reused: the common case (Section 2: ~95% of
    // lines never show reuse) should be the default prediction.
    table.assign(size, 1);
}

std::size_t
ReusePredictor::indexOf(Addr line_addr) const
{
    // Mix the line number so neighbouring lines spread over the table.
    std::uint64_t x = lineNumber(line_addr);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x & (table.size() - 1));
}

bool
ReusePredictor::predictReused(Addr line_addr) const
{
    return table[indexOf(line_addr)] >= takenThreshold;
}

void
ReusePredictor::train(Addr line_addr, bool was_reused)
{
    std::uint8_t &ctr = table[indexOf(line_addr)];
    if (was_reused) {
        if (ctr < counterMax)
            ++ctr;
    } else if (ctr > 0) {
        --ctr;
    }
}

void
ReusePredictor::save(Serializer &s) const
{
    saveVec(s, table);
}

void
ReusePredictor::restore(Deserializer &d)
{
    restoreVec(d, table, "reuse predictor table");
}

} // namespace rc
