/**
 * @file
 * The reuse cache (paper Section 3): a decoupled tag/data SLLC that only
 * stores the data of lines that have shown reuse.
 *
 * Behaviour summary:
 *  - Tag miss: the line is read from main memory and loaded into the
 *    requesting private cache; only a tag (state TO, no data) is
 *    allocated at the SLLC.
 *  - Tag hit without data (TO): a reuse is detected.  The line is read
 *    again (from memory, or from the private owner when one exists) and
 *    loaded into the private cache and the data array simultaneously.
 *  - Tag hit with data: served from the data array.
 *  - Data-array eviction (DataRepl): the victim's tag remains, its state
 *    reverting to TO; the forward pointer is invalidated by following the
 *    victim's reverse pointer.
 *  - Tag replacement protects private-cache lines and recently reused
 *    lines (NRR), and recalls private copies to preserve inclusion.
 */

#ifndef RC_REUSE_REUSE_CACHE_HH
#define RC_REUSE_REUSE_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/llc_iface.hh"
#include "mem/memctrl.hh"
#include "reuse/data_array.hh"
#include "reuse/reuse_predictor.hh"
#include "reuse/tag_array.hh"

namespace rc
{

/** Reuse-cache configuration (RC-x/y of the paper). */
struct ReuseCacheConfig
{
    /**
     * Tag-array capacity expressed as the data capacity of the
     * conventional cache with the same number of tags ("x MBeq"):
     * tag entries = tagEquivBytes / 64.
     */
    std::uint64_t tagEquivBytes = 4ull << 20;
    std::uint32_t tagWays = 16;

    /** Data-array capacity in bytes ("y MB"). */
    std::uint64_t dataBytes = 1ull << 20;

    /** Data-array associativity; 0 selects fully associative. */
    std::uint32_t dataWays = 0;

    ReplKind tagRepl = ReplKind::NRR;
    /** Data replacement: NRU set-associative, Clock fully associative. */
    ReplKind dataRepl = ReplKind::Clock;

    std::uint32_t numCores = 8;
    Cycle tagLatency = 2;
    Cycle dataLatency = 8;
    Cycle interventionLatency = 14;
    std::uint64_t seed = 1;
    std::string name = "reuse";

    /**
     * Optional extension (paper Section 6): consult a bimodal reuse
     * predictor on tag misses and install predicted-reused lines in the
     * data array immediately, skipping the tag-only stage and its second
     * memory fetch.  Off by default (the paper's design).
     */
    bool usePredictor = false;
    std::uint32_t predictorEntries = 16384;

    /**
     * Convenience constructor for the paper's RC-x/y points.
     * @param tag_equiv_bytes tag capacity in MBeq-bytes.
     * @param data_bytes data-array bytes.
     * @param data_ways data associativity (0 = fully associative, which
     *        also selects Clock replacement; otherwise NRU).
     */
    static ReuseCacheConfig standard(std::uint64_t tag_equiv_bytes,
                                     std::uint64_t data_bytes,
                                     std::uint32_t data_ways = 0);
};

/** The paper's decoupled tag/data SLLC. */
class ReuseCache : public Sllc
{
  public:
    /**
     * @param cfg geometry, policies and latencies.
     * @param mem memory controller servicing fetches (not owned).
     */
    ReuseCache(const ReuseCacheConfig &cfg, MemCtrl &mem);

    LlcResponse request(const LlcRequest &req) override;
    void evictNotify(Addr line_addr, CoreId core, bool dirty,
                     Cycle now) override;
    void setRecallHandler(RecallHandler *handler) override { recaller = handler; }
    void setObserver(LlcObserver *observer) override { watcher = observer; }
    const StatSet &stats() const override { return statSet; }
    Counter missesBy(CoreId core) const override;
    Counter accessesBy(CoreId core) const override;
    std::string describe() const override;
    std::uint64_t dataLinesResident() const override
    {
        return data.residentCount();
    }
    std::uint64_t dataLinesTotal() const override
    {
        return data.geometry().numLines();
    }
    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

    /** State of a line (tests); I when absent. */
    LlcState stateOf(Addr line_addr) const;

    /** Directory entry of a line (tests); nullptr when absent. */
    const DirectoryEntry *dirOf(Addr line_addr) const;

    /** Tag array (tests / analyses). */
    const ReuseTagArray &tagArray() const { return tags; }

    /** Data array (tests / analyses). */
    const ReuseDataArray &dataArray() const { return data; }

    /** Fault-injection hook: mutable tag array (verify/tests only). */
    ReuseTagArray &tagArrayMut() { return tags; }

    /** Fault-injection hook: mutable data array (verify/tests only). */
    ReuseDataArray &dataArrayMut() { return data; }

    /**
     * Verify the pointer invariants: every tag in a tag+data state names
     * a valid data entry whose reverse pointer names it back, and vice
     * versa.  Throws SimError(Integrity) on violation; used by property
     * tests and the end-of-run integrity walk.
     */
    void checkInvariants() const;

    /**
     * Fraction of tag generations that never allocated a data entry
     * (Table 6 of the paper).  Counts completed generations plus the
     * currently resident ones.
     */
    double fractionNeverEnteredData() const;

  private:
    void evictTag(std::uint64_t set, std::uint32_t way, Cycle now);
    void allocData(std::uint64_t tag_set, std::uint32_t tag_way, Cycle now);

    ReuseCacheConfig cfg;
    ReuseTagArray tags;
    ReuseDataArray data;
    MemCtrl &mem;
    std::unique_ptr<ReusePredictor> predictor; //!< optional extension
    RecallHandler *recaller = nullptr;
    LlcObserver *watcher = nullptr;

    StatSet statSet;
    Counter &accesses;
    Counter &tagMisses;
    Counter &tagHitsData;
    Counter &tagHitsTagOnly;
    Counter &reloadsFromMem;
    Counter &upgradeReqs;
    Counter &interventions;
    Counter &invalidationsSent;
    Counter &inclusionRecalls;
    Counter &dirtyWritebacks;
    Counter &tagAllocs;
    Counter &tagEvictions;
    Counter &dataAllocs;
    Counter &dataEvictions;
    Counter &generationsWithData;
    Counter &predictedFills;
    Counter &predictedFillsWasted;
    std::vector<Counter> coreAccesses;
    std::vector<Counter> coreMisses;
};

} // namespace rc

#endif // RC_REUSE_REUSE_CACHE_HH
