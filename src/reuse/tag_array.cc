#include "reuse/tag_array.hh"

#include "common/log.hh"
#include "common/wayscan.hh"
#include "snapshot/serializer.hh"

namespace rc
{

ReuseTagArray::ReuseTagArray(const CacheGeometry &geometry, ReplKind kind,
                             std::uint32_t num_cores, std::uint64_t seed)
    : geom(geometry),
      tagLane(geometry.numLines(), kInvalidTagLane),
      entries(geometry.numLines()),
      repl(makeReplacement(kind, geometry.numSets(), geometry.numWays(),
                           num_cores, seed)),
      fast(repl.get(), kind)
{
}

ReuseTagArray::Entry *
ReuseTagArray::find(Addr line_addr, std::uint32_t &way_out)
{
    const std::uint64_t set = geom.setIndex(line_addr);
    const std::uint64_t tag = geom.tagOf(line_addr);
    const std::uint64_t base = set * geom.numWays();
    const std::uint64_t *tl = tagLane.data() + base;
    // Invalid ways hold a sentinel (invalidate() writes it), so one
    // vector scan finds the line; the state re-check and continuation
    // only matter if an external mutation ever bypasses invalidate().
    std::int32_t w = scanWays(tl, geom.numWays(), tag);
    while (w >= 0) {
        if (entries[base + w].state != LlcState::I) {
            way_out = static_cast<std::uint32_t>(w);
            return &entries[base + w];
        }
        w = scanWaysFrom(tl, geom.numWays(), tag,
                         static_cast<std::uint32_t>(w) + 1);
    }
    return nullptr;
}

void
ReuseTagArray::setTag(std::uint64_t set, std::uint32_t way, Addr line_addr)
{
    tagLane[set * geom.numWays() + way] = geom.tagOf(line_addr);
}

ReuseTagArray::Entry &
ReuseTagArray::at(std::uint64_t set, std::uint32_t way)
{
    return entries[set * geom.numWays() + way];
}

const ReuseTagArray::Entry &
ReuseTagArray::at(std::uint64_t set, std::uint32_t way) const
{
    return entries[set * geom.numWays() + way];
}

void
ReuseTagArray::touchHit(std::uint64_t set, std::uint32_t way, CoreId core,
                        Addr pc, Addr line_addr)
{
    fast.onHit(set, way, ReplAccess{core, false, false, pc, line_addr});
}

void
ReuseTagArray::touchFill(std::uint64_t set, std::uint32_t way, CoreId core,
                         bool insert_lru, Addr pc, Addr line_addr)
{
    fast.onFill(set, way, ReplAccess{core, true, insert_lru, pc, line_addr});
}

void
ReuseTagArray::invalidate(std::uint64_t set, std::uint32_t way)
{
    Entry &e = entries[set * geom.numWays() + way];
    e.state = LlcState::I;
    e.dir.clear();
    e.enteredData = false;
    e.reused = false;
    e.predicted = false;
    tagLane[set * geom.numWays() + way] = kInvalidTagLane;
    fast.onInvalidate(set, way);
}

std::uint32_t
ReuseTagArray::allocateWay(std::uint64_t set, CoreId core,
                           bool &needs_eviction, Addr pc, Addr line_addr)
{
    const std::uint64_t base = set * geom.numWays();
    for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
        if (entries[base + w].state == LlcState::I) {
            needs_eviction = false;
            return w;
        }
    }
    VictimQuery q;
    q.core = core;
    q.pc = pc;
    q.lineAddr = line_addr;
    for (std::uint32_t w = 0; w < geom.numWays() && w < 64; ++w) {
        if (!entries[base + w].dir.empty())
            q.avoidMask |= std::uint64_t{1} << w;
    }
    needs_eviction = true;
    const std::uint32_t w = fast.victim(set, q);
    RC_ASSERT(w < geom.numWays(), "victim way out of range");
    return w;
}

Addr
ReuseTagArray::lineAddrOf(std::uint64_t set, std::uint32_t way) const
{
    const Entry &e = entries[set * geom.numWays() + way];
    RC_ASSERT(e.state != LlcState::I, "address of an invalid entry");
    return geom.lineAddr(tagLane[set * geom.numWays() + way], set);
}

std::uint64_t
ReuseTagArray::residentCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries)
        n += e.state != LlcState::I;
    return n;
}

void
ReuseTagArray::save(Serializer &s) const
{
    s.putU64(entries.size());
    for (std::uint64_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        // Canonical image: invalid ways serialize a zero tag (the scan
        // sentinel is an in-memory detail).
        s.putU64(e.state != LlcState::I ? tagLane[i] : 0);
        s.putU8(static_cast<std::uint8_t>(e.state));
        e.dir.save(s);
        s.putU32(e.fwdWay);
        s.putBool(e.enteredData);
        s.putBool(e.reused);
        s.putBool(e.predicted);
    }
    s.beginSection("repl");
    repl->save(s);
    s.endSection("repl");
}

void
ReuseTagArray::restore(Deserializer &d)
{
    const std::uint64_t n = d.getU64();
    if (n != entries.size())
        throwSimError(SimError::Kind::Snapshot,
                      "reuse tag array holds %zu entries but the checkpoint "
                      "carries %llu",
                      entries.size(), (unsigned long long)n);
    for (std::uint64_t i = 0; i < entries.size(); ++i) {
        Entry &e = entries[i];
        tagLane[i] = d.getU64();
        e.state = static_cast<LlcState>(d.getU8());
        e.dir.restore(d);
        e.fwdWay = d.getU32();
        e.enteredData = d.getBool();
        e.reused = d.getBool();
        e.predicted = d.getBool();
        if (e.state == LlcState::I)
            tagLane[i] = kInvalidTagLane;
    }
    d.beginSection("repl");
    repl->restore(d);
    d.endSection("repl");
}

} // namespace rc
