#include "reuse/reuse_cache.hh"

#include <cstdio>

#include "common/log.hh"
#include "snapshot/serializer.hh"
#include "telemetry/trace_event.hh"

namespace rc
{

ReuseCacheConfig
ReuseCacheConfig::standard(std::uint64_t tag_equiv_bytes,
                           std::uint64_t data_bytes,
                           std::uint32_t data_ways)
{
    ReuseCacheConfig cfg;
    cfg.tagEquivBytes = tag_equiv_bytes;
    cfg.dataBytes = data_bytes;
    cfg.dataWays = data_ways;
    cfg.dataRepl = data_ways == 0 ? ReplKind::Clock : ReplKind::NRU;
    return cfg;
}

namespace
{

CacheGeometry
dataGeometry(const ReuseCacheConfig &cfg)
{
    const std::uint64_t lines = cfg.dataBytes / lineBytes;
    const std::uint32_t ways = cfg.dataWays == 0
        ? static_cast<std::uint32_t>(lines)
        : cfg.dataWays;
    return CacheGeometry(lines, ways);
}

} // namespace

ReuseCache::ReuseCache(const ReuseCacheConfig &cfg_, MemCtrl &mem_)
    : cfg(cfg_),
      tags(CacheGeometry::fromBytes(cfg_.tagEquivBytes, cfg_.tagWays),
           cfg_.tagRepl, cfg_.numCores, cfg_.seed),
      data(dataGeometry(cfg_), cfg_.dataRepl, cfg_.seed + 1),
      mem(mem_),
      predictor(cfg_.usePredictor
                    ? std::make_unique<ReusePredictor>(
                          cfg_.predictorEntries)
                    : nullptr),
      statSet(cfg_.name),
      accesses(statSet.add("accesses", "demand requests received")),
      tagMisses(statSet.add("tagMisses", "requests missing the tag array")),
      tagHitsData(statSet.add("tagHitsData",
                              "hits served by the data array")),
      tagHitsTagOnly(statSet.add("tagHitsTagOnly",
                                 "reuse detections (hit on a TO tag)")),
      reloadsFromMem(statSet.add("reloadsFromMem",
                                 "reuses paying a second memory fetch")),
      upgradeReqs(statSet.add("upgrades", "UPG requests received")),
      interventions(statSet.add("interventions",
                                "requests served by a private owner")),
      invalidationsSent(statSet.add("invalidationsSent",
                                    "private copies invalidated (GETX/UPG)")),
      inclusionRecalls(statSet.add("inclusionRecalls",
                                   "tag victims recalled from private caches")),
      dirtyWritebacks(statSet.add("dirtyWritebacks",
                                  "dirty lines written to memory")),
      tagAllocs(statSet.add("tagAllocs", "tag generations started")),
      tagEvictions(statSet.add("tagEvictions", "tag generations ended")),
      dataAllocs(statSet.add("dataAllocs", "data-array fills")),
      dataEvictions(statSet.add("dataEvictions", "data-array evictions")),
      generationsWithData(statSet.add("generationsWithData",
                                      "tag generations that reached the "
                                      "data array")),
      predictedFills(statSet.add("predictedFills",
                                 "misses installed with data by the "
                                 "reuse predictor")),
      predictedFillsWasted(statSet.add("predictedFillsWasted",
                                       "predicted fills never reused")),
      coreAccesses(cfg_.numCores, 0),
      coreMisses(cfg_.numCores, 0)
{
    RC_ASSERT(cfg.numCores > 0 && cfg.numCores <= 32,
              "full-map directory supports 1..32 cores");
    RC_ASSERT(data.geometry().numSets() <= tags.geometry().numSets(),
              "data array may not have more sets than the tag array");
    RC_ASSERT(tags.geometry().numLines() >= data.geometry().numLines(),
              "tag array must cover at least the data array");
}

void
ReuseCache::allocData(std::uint64_t tag_set, std::uint32_t tag_way,
                      Cycle now)
{
    ReuseTagArray::Entry &entry = tags.at(tag_set, tag_way);
    const std::uint64_t dset = data.setFor(tag_set);

    bool needs_eviction = false;
    const std::uint32_t dway = data.allocateWay(dset, needs_eviction);
    if (needs_eviction) {
        // DataRepl: follow the victim's reverse pointer to its tag.
        const ReuseDataArray::Entry &victim = data.at(dset, dway);
        ReuseTagArray::Entry &vtag = tags.at(victim.tagSet, victim.tagWay);
        RC_CHECK(llcHasData(vtag.state), SimError::Kind::Integrity,
                 "data entry owned by a tag without data (state %s)",
                 toString(vtag.state));
        const Addr vline = tags.lineAddrOf(victim.tagSet, victim.tagWay);

        ProtoInput in{vtag.state, ProtoEvent::DataRepl,
                      vtag.dir.hasOwner(), true};
        const ProtoResult res = protocolTransition(in);
        RC_CHECK(res.legal, SimError::Kind::Protocol,
                 "DataRepl illegal in state %s", toString(vtag.state));
        if (res.actions & ActWriteMemData) {
            mem.writeLine(vline, now);
            ++dirtyWritebacks;
        }
        vtag.state = res.next; // TO: the tag remains, the data is gone
        data.invalidate(dset, dway);
        ++dataEvictions;
        if (watcher)
            watcher->onDataEvict(vline, now);
    }

    data.fill(dset, dway, tag_set, tag_way);
    entry.fwdWay = dway;
    if (!entry.enteredData) {
        entry.enteredData = true;
        ++generationsWithData;
    }
    ++dataAllocs;
    if (watcher)
        watcher->onDataFill(tags.lineAddrOf(tag_set, tag_way), now);
}

void
ReuseCache::evictTag(std::uint64_t set, std::uint32_t way, Cycle now)
{
    ReuseTagArray::Entry &e = tags.at(set, way);
    RC_CHECK(e.state != LlcState::I, SimError::Kind::Integrity,
             "evicting an invalid tag");
    const Addr line = tags.lineAddrOf(set, way);

    ProtoInput in{e.state, ProtoEvent::TagRepl, e.dir.hasOwner(), true};
    const ProtoResult res = protocolTransition(in);
    RC_CHECK(res.legal, SimError::Kind::Protocol,
             "TagRepl illegal in state %s", toString(e.state));

    bool dirty_recalled = false;
    if ((res.actions & ActRecallSharers) && !e.dir.empty()) {
        RC_CHECK(recaller, SimError::Kind::Config,
                 "no recall handler installed");
        dirty_recalled = recaller->recall(line, e.dir.presenceMask());
        ++inclusionRecalls;
    }
    if (res.actions & ActWriteMemData) {
        mem.writeLine(line, now);
        ++dirtyWritebacks;
    }
    if ((res.actions & ActWriteMemPut) && dirty_recalled) {
        mem.writeLine(line, now);
        ++dirtyWritebacks;
    }

    if (llcHasData(e.state)) {
        data.invalidate(data.setFor(set), e.fwdWay);
        ++dataEvictions;
        if (watcher)
            watcher->onDataEvict(line, now);
    }

    if (predictor) {
        predictor->train(line, e.reused);
        if (e.predicted && !e.reused)
            ++predictedFillsWasted;
    }

    tags.invalidate(set, way);
    ++tagEvictions;
}

LlcResponse
ReuseCache::request(const LlcRequest &req)
{
    const Addr line = lineAlign(req.lineAddr);
    ++accesses;
    ++coreAccesses[req.core % coreAccesses.size()];
    if (req.event == ProtoEvent::UPG)
        ++upgradeReqs;

    const std::uint64_t set = tags.geometry().setIndex(line);
    std::uint32_t way = 0;
    ReuseTagArray::Entry *entry = tags.find(line, way);

    const bool owner_valid = entry && entry->dir.hasOwner();
    RC_CHECK(!owner_valid || entry->dir.owner() != req.core,
             SimError::Kind::Protocol,
             "owner cannot request its own line at the SLLC");

    // Optional predictor extension: a tag miss predicted to show reuse
    // allocates tag AND data immediately (the non-selective transition),
    // trading a possibly wasted data entry for skipping the tag-only
    // stage and its second memory fetch.
    const bool predicted_fill =
        !entry && predictor && predictor->predictReused(line);

    ProtoInput in;
    in.state = entry ? entry->state : LlcState::I;
    in.event = req.event;
    in.ownerValid = owner_valid;
    in.selectiveAlloc = !predicted_fill;
    in.prefetch = req.prefetch;
    const ProtoResult res = protocolTransition(in);
    RC_CHECK(res.legal, SimError::Kind::Protocol, "%s illegal in state %s",
             toString(req.event), toString(in.state));

    LlcResponse resp;
    resp.tagHit = entry != nullptr;
    Cycle done = req.now + cfg.tagLatency;

    if (entry) {
        const bool was_tag_only = entry->state == LlcState::TO;

        if (res.actions & ActDataHit) {
            done += cfg.dataLatency;
            resp.dataHit = true;
            ++tagHitsData;
            if (!req.prefetch)
                data.touchHit(data.setFor(set), entry->fwdWay);
            if (watcher)
                watcher->onDataHit(line, req.now);
        }

        if (res.actions & ActFetchOwner) {
            RC_CHECK(recaller, SimError::Kind::Config,
                     "intervention needs a recall handler");
            done += cfg.interventionLatency;
            ++interventions;
            if (req.event == ProtoEvent::GETS)
                recaller->downgrade(line, 1u << entry->dir.owner());
            // For GETX the InvSharers recall below retrieves the data
            // while invalidating the old owner.
        }

        if (res.actions & ActInvSharers) {
            const std::uint32_t mask = entry->dir.othersMask(req.core);
            if (mask) {
                RC_CHECK(recaller, SimError::Kind::Config,
                         "no recall handler installed");
                recaller->recall(line, mask);
                invalidationsSent += __builtin_popcount(mask);
                for (CoreId c = 0; c < cfg.numCores; ++c) {
                    if (mask & (1u << c))
                        entry->dir.removeSharer(c);
                }
            }
        }

        if (res.actions & ActFetchMem) {
            // The paper's double fetch: a reuse on a TO tag re-reads the
            // line from main memory.  (A prefetch touching a TO tag also
            // fetches, but is not a reuse and not counted as a reload.)
            done = mem.readLine(line, req.now + cfg.tagLatency);
            resp.memFetched = true;
            if (!req.prefetch)
                ++reloadsFromMem;
            ++coreMisses[req.core % coreMisses.size()];
        }

        if (res.actions & ActAllocData) {
            RC_CHECK(was_tag_only, SimError::Kind::Protocol,
                     "data allocation on a tag+data state");
            ++tagHitsTagOnly;
            allocData(set, way, req.now);
        }

        entry->state = res.next;
        if (res.actions & ActClearOwner)
            entry->dir.clearOwner();
        if (res.actions & ActFillPrivate)
            entry->dir.addSharer(req.core);
        if (res.actions & ActSetOwner)
            entry->dir.setOwner(req.core);
        if (!req.prefetch) {
            // Prefetch hits are not reuses and earn no promotion
            // (Section 6: prefetched lines keep the lowest priority).
            entry->reused = true;
            tags.touchHit(set, way, req.core, req.pc, line);
        }
    } else {
        RC_CHECK(res.actions & ActAllocTag, SimError::Kind::Protocol,
                 "miss without tag allocation");
        bool needs_eviction = false;
        way = tags.allocateWay(set, req.core, needs_eviction, req.pc, line);
        if (needs_eviction)
            evictTag(set, way, req.now);

        ReuseTagArray::Entry &e = tags.at(set, way);
        tags.setTag(set, way, line);
        e.state = res.next; // TO (S with a predicted fill)
        e.dir.clear();
        e.enteredData = false;
        e.reused = false;
        e.predicted = predicted_fill;
        if (res.actions & ActFillPrivate)
            e.dir.addSharer(req.core);
        if (res.actions & ActSetOwner)
            e.dir.setOwner(req.core);
        // NRR bit set: not reused yet.
        tags.touchFill(set, way, req.core, false, req.pc, line);
        ++tagAllocs;

        if (res.actions & ActAllocData) {
            // Predictor extension: install the data right away.
            allocData(set, way, req.now);
            ++predictedFills;
        }

        RC_CHECK(res.actions & ActFetchMem, SimError::Kind::Protocol,
                 "tag miss must fetch memory");
        done = mem.readLine(line, req.now + cfg.tagLatency);
        resp.memFetched = true;
        ++tagMisses;
        ++coreMisses[req.core % coreMisses.size()];
    }

    resp.doneAt = done;
#if RC_TRACE_ENABLED
    if (EventTracer *tr = EventTracer::current(); tr && tr->enabled()) {
        tr->record(resp.dataHit ? "rc.dataHit"
                   : resp.tagHit ? "rc.tagOnlyHit" : "rc.tagMiss",
                   TraceDomain::Sim, req.core, req.now, done - req.now,
                   line);
        if (const char *coh = coherenceTraceLabel(res.actions))
            tr->record(coh, TraceDomain::Sim, req.core, req.now, 0, line);
    }
#endif
    return resp;
}

void
ReuseCache::evictNotify(Addr line_addr, CoreId core, bool dirty, Cycle now)
{
    const Addr line = lineAlign(line_addr);
    std::uint32_t way = 0;
    ReuseTagArray::Entry *entry = tags.find(line, way);
    RC_CHECK(entry, SimError::Kind::Integrity,
             "eviction notification for a non-resident tag "
             "(inclusion violated)");

    ProtoInput in;
    in.state = entry->state;
    in.event = dirty ? ProtoEvent::PUTX : ProtoEvent::PUTS;
    in.ownerValid = entry->dir.hasOwner();
    in.selectiveAlloc = true;
    const ProtoResult res = protocolTransition(in);
    RC_CHECK(res.legal, SimError::Kind::Protocol, "%s illegal in state %s",
             toString(in.event), toString(in.state));

    if (res.actions & ActWriteMemPut) {
        // TO tags have no data array entry to absorb the writeback.
        mem.writeLine(line, now);
        ++dirtyWritebacks;
    }
    entry->state = res.next;
    if (res.actions & ActClearOwner)
        entry->dir.clearOwner();
    entry->dir.removeSharer(core);
}

Counter
ReuseCache::missesBy(CoreId core) const
{
    return coreMisses[core % coreMisses.size()];
}

Counter
ReuseCache::accessesBy(CoreId core) const
{
    return coreAccesses[core % coreAccesses.size()];
}

std::string
ReuseCache::describe() const
{
    const double tag_mb =
        static_cast<double>(cfg.tagEquivBytes) / (1024.0 * 1024.0);
    const double data_mb =
        static_cast<double>(cfg.dataBytes) / (1024.0 * 1024.0);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "RC-%.3g/%.3g (%s data array)",
                  tag_mb, data_mb,
                  cfg.dataWays == 0 ? "FA"
                                    : (std::to_string(cfg.dataWays) +
                                       "-way").c_str());
    return buf;
}

LlcState
ReuseCache::stateOf(Addr line_addr) const
{
    std::uint32_t way = 0;
    auto *self = const_cast<ReuseCache *>(this);
    const ReuseTagArray::Entry *e =
        self->tags.find(lineAlign(line_addr), way);
    return e ? e->state : LlcState::I;
}

const DirectoryEntry *
ReuseCache::dirOf(Addr line_addr) const
{
    std::uint32_t way = 0;
    auto *self = const_cast<ReuseCache *>(this);
    const ReuseTagArray::Entry *e =
        self->tags.find(lineAlign(line_addr), way);
    return e ? &e->dir : nullptr;
}

void
ReuseCache::checkInvariants() const
{
    std::uint64_t tags_with_data = 0;
    const auto &tg = tags.geometry();
    for (std::uint64_t s = 0; s < tg.numSets(); ++s) {
        for (std::uint32_t w = 0; w < tg.numWays(); ++w) {
            const ReuseTagArray::Entry &e = tags.at(s, w);
            if (!llcHasData(e.state))
                continue;
            ++tags_with_data;
            const std::uint64_t ds = data.setFor(s);
            RC_CHECK(e.fwdWay < data.geometry().numWays(),
                     SimError::Kind::Integrity,
                     "forward pointer out of range");
            const ReuseDataArray::Entry &d = data.at(ds, e.fwdWay);
            RC_CHECK(data.validAt(ds, e.fwdWay), SimError::Kind::Integrity,
                     "forward pointer to an empty data entry");
            RC_CHECK(d.tagSet == s && d.tagWay == w,
                     SimError::Kind::Integrity,
                     "reverse pointer does not match forward pointer");
        }
    }
    std::uint64_t valid_data = 0;
    const auto &dg = data.geometry();
    for (std::uint64_t s = 0; s < dg.numSets(); ++s) {
        for (std::uint32_t w = 0; w < dg.numWays(); ++w) {
            const ReuseDataArray::Entry &d = data.at(s, w);
            if (!data.validAt(s, w))
                continue;
            ++valid_data;
            const ReuseTagArray::Entry &e = tags.at(d.tagSet, d.tagWay);
            RC_CHECK(llcHasData(e.state), SimError::Kind::Integrity,
                     "data entry owned by tag in state %s",
                     toString(e.state));
            RC_CHECK(e.fwdWay == w && data.setFor(d.tagSet) == s,
                     SimError::Kind::Integrity,
                     "forward pointer does not match reverse pointer");
        }
    }
    RC_CHECK(tags_with_data == valid_data, SimError::Kind::Integrity,
             "tag/data population mismatch: %llu tags vs %llu data",
             static_cast<unsigned long long>(tags_with_data),
             static_cast<unsigned long long>(valid_data));
}

double
ReuseCache::fractionNeverEnteredData() const
{
    if (tagAllocs == 0)
        return 0.0;
    return 1.0 - static_cast<double>(generationsWithData) /
                     static_cast<double>(tagAllocs);
}

void
ReuseCache::save(Serializer &s) const
{
    s.beginSection("tags");
    tags.save(s);
    s.endSection("tags");
    s.beginSection("data");
    data.save(s);
    s.endSection("data");
    s.putBool(predictor != nullptr);
    if (predictor) {
        s.beginSection("predictor");
        predictor->save(s);
        s.endSection("predictor");
    }
    statSet.save(s);
    saveVec(s, coreAccesses);
    saveVec(s, coreMisses);
}

void
ReuseCache::restore(Deserializer &d)
{
    d.beginSection("tags");
    tags.restore(d);
    d.endSection("tags");
    d.beginSection("data");
    data.restore(d);
    d.endSection("data");
    const bool has_predictor = d.getBool();
    if (has_predictor != (predictor != nullptr))
        throwSimError(SimError::Kind::Snapshot,
                      "reuse cache predictor configuration does not match "
                      "the checkpoint (live: %s, checkpoint: %s)",
                      predictor ? "on" : "off", has_predictor ? "on" : "off");
    if (predictor) {
        d.beginSection("predictor");
        predictor->restore(d);
        d.endSection("predictor");
    }
    statSet.restore(d);
    restoreVec(d, coreAccesses, "reuse cache per-core accesses");
    restoreVec(d, coreMisses, "reuse cache per-core misses");
}

} // namespace rc
