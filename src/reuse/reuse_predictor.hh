/**
 * @file
 * Optional reuse predictor (paper Section 6, "related work and
 * concluding remarks"): the authors note that reuse predictors in the
 * style of SHiP / EAF "could be used to increase the performance of the
 * reuse cache by predicting the reuse behavior of a cache line on a tag
 * miss" - a correctly predicted line can be installed in the data array
 * immediately, skipping the tag-only stage and its second memory fetch.
 *
 * This is a deliberately cheap address-hashed bimodal predictor: a table
 * of 2-bit saturating counters trained with each tag generation's
 * observed outcome (did the generation see a reuse before eviction?).
 */

#ifndef RC_REUSE_REUSE_PREDICTOR_HH
#define RC_REUSE_REUSE_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rc
{

class Serializer;
class Deserializer;

/** Address-hashed bimodal (2-bit) reuse predictor. */
class ReusePredictor
{
  public:
    /** @param entries table size; rounded up to a power of two. */
    explicit ReusePredictor(std::uint32_t entries = 16384);

    /** @return true iff @p line_addr is predicted to show reuse. */
    bool predictReused(Addr line_addr) const;

    /**
     * Train with an observed outcome.
     * @param line_addr the line whose generation ended.
     * @param was_reused whether the generation saw at least one reuse.
     */
    void train(Addr line_addr, bool was_reused);

    /** Table size in entries. */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(table.size());
    }

    /** Storage cost in bits (2 per entry). */
    std::uint64_t costBits() const { return table.size() * 2; }

    /** Checkpoint the counter table. */
    void save(Serializer &s) const;

    /** Restore a save()'d table; throws SimError(Snapshot) on size
     *  mismatch. */
    void restore(Deserializer &d);

  private:
    std::size_t indexOf(Addr line_addr) const;

    std::vector<std::uint8_t> table; //!< 2-bit counters, 0..3
};

} // namespace rc

#endif // RC_REUSE_REUSE_PREDICTOR_HH
