#include "reuse/data_array.hh"

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc
{

ReuseDataArray::ReuseDataArray(const CacheGeometry &geometry, ReplKind kind,
                               std::uint64_t seed)
    : geom(geometry),
      entries(geometry.numLines()),
      repl(makeReplacement(kind, geometry.numSets(), geometry.numWays(),
                           1, seed))
{
}

std::uint32_t
ReuseDataArray::allocateWay(std::uint64_t set, bool &needs_eviction)
{
    const std::uint64_t base = set * geom.numWays();
    for (std::uint32_t w = 0; w < geom.numWays(); ++w) {
        if (!entries[base + w].valid) {
            needs_eviction = false;
            return w;
        }
    }
    needs_eviction = true;
    const std::uint32_t w = repl->victim(set, VictimQuery{});
    RC_ASSERT(w < geom.numWays(), "victim way out of range");
    return w;
}

void
ReuseDataArray::fill(std::uint64_t set, std::uint32_t way,
                     std::uint64_t tag_set, std::uint32_t tag_way)
{
    Entry &e = entries[set * geom.numWays() + way];
    RC_ASSERT(!e.valid, "filling an occupied data entry");
    e.valid = true;
    e.tagSet = tag_set;
    e.tagWay = tag_way;
    repl->onFill(set, way, ReplAccess{});
}

void
ReuseDataArray::touchHit(std::uint64_t set, std::uint32_t way)
{
    repl->onHit(set, way, ReplAccess{});
}

void
ReuseDataArray::invalidate(std::uint64_t set, std::uint32_t way)
{
    Entry &e = entries[set * geom.numWays() + way];
    RC_ASSERT(e.valid, "invalidating an empty data entry");
    e = Entry{};
    repl->onInvalidate(set, way);
}

const ReuseDataArray::Entry &
ReuseDataArray::at(std::uint64_t set, std::uint32_t way) const
{
    return entries[set * geom.numWays() + way];
}

ReuseDataArray::Entry &
ReuseDataArray::atMut(std::uint64_t set, std::uint32_t way)
{
    return entries[set * geom.numWays() + way];
}

std::uint64_t
ReuseDataArray::residentCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries)
        n += e.valid;
    return n;
}

void
ReuseDataArray::save(Serializer &s) const
{
    s.putU64(entries.size());
    for (const Entry &e : entries) {
        s.putBool(e.valid);
        s.putU64(e.tagSet);
        s.putU32(e.tagWay);
    }
    s.beginSection("repl");
    repl->save(s);
    s.endSection("repl");
}

void
ReuseDataArray::restore(Deserializer &d)
{
    const std::uint64_t n = d.getU64();
    if (n != entries.size())
        throwSimError(SimError::Kind::Snapshot,
                      "reuse data array holds %zu entries but the checkpoint "
                      "carries %llu",
                      entries.size(), (unsigned long long)n);
    for (Entry &e : entries) {
        e.valid = d.getBool();
        e.tagSet = d.getU64();
        e.tagWay = d.getU32();
    }
    d.beginSection("repl");
    repl->restore(d);
    d.endSection("repl");
}

} // namespace rc
