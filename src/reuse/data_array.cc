#include "reuse/data_array.hh"

#include "common/log.hh"
#include "common/wayscan.hh"
#include "snapshot/serializer.hh"

namespace rc
{

ReuseDataArray::ReuseDataArray(const CacheGeometry &geometry, ReplKind kind,
                               std::uint64_t seed)
    : geom(geometry),
      validLane(geometry.numLines(), 0),
      entries(geometry.numLines()),
      repl(makeReplacement(kind, geometry.numSets(), geometry.numWays(),
                           1, seed)),
      fast(repl.get(), kind)
{
}

std::uint32_t
ReuseDataArray::allocateWay(std::uint64_t set, bool &needs_eviction)
{
    const std::uint64_t base = set * geom.numWays();
    const std::uint8_t *vl = validLane.data() + base;
    // Vectorized first-free-byte scan: the preferred configuration is
    // fully associative, so this walks thousands of ways when the array
    // still has room.
    const std::int32_t free_way = scanFirstFree(vl, geom.numWays());
    if (free_way >= 0) {
        needs_eviction = false;
        return static_cast<std::uint32_t>(free_way);
    }
    needs_eviction = true;
    const std::uint32_t w = fast.victim(set, VictimQuery{});
    RC_ASSERT(w < geom.numWays(), "victim way out of range");
    return w;
}

void
ReuseDataArray::fill(std::uint64_t set, std::uint32_t way,
                     std::uint64_t tag_set, std::uint32_t tag_way)
{
    const std::uint64_t idx = set * geom.numWays() + way;
    RC_ASSERT(!validLane[idx], "filling an occupied data entry");
    validLane[idx] = 1;
    entries[idx].tagSet = tag_set;
    entries[idx].tagWay = tag_way;
    fast.onFill(set, way, ReplAccess{});
}

void
ReuseDataArray::touchHit(std::uint64_t set, std::uint32_t way)
{
    fast.onHit(set, way, ReplAccess{});
}

void
ReuseDataArray::invalidate(std::uint64_t set, std::uint32_t way)
{
    const std::uint64_t idx = set * geom.numWays() + way;
    RC_ASSERT(validLane[idx], "invalidating an empty data entry");
    validLane[idx] = 0;
    entries[idx] = Entry{};
    fast.onInvalidate(set, way);
}

const ReuseDataArray::Entry &
ReuseDataArray::at(std::uint64_t set, std::uint32_t way) const
{
    return entries[set * geom.numWays() + way];
}

bool
ReuseDataArray::validAt(std::uint64_t set, std::uint32_t way) const
{
    return validLane[set * geom.numWays() + way] != 0;
}

std::uint64_t
ReuseDataArray::residentCount() const
{
    std::uint64_t n = 0;
    for (auto v : validLane)
        n += v;
    return n;
}

void
ReuseDataArray::save(Serializer &s) const
{
    s.putU64(entries.size());
    for (std::uint64_t i = 0; i < entries.size(); ++i) {
        s.putBool(validLane[i] != 0);
        s.putU64(entries[i].tagSet);
        s.putU32(entries[i].tagWay);
    }
    s.beginSection("repl");
    repl->save(s);
    s.endSection("repl");
}

void
ReuseDataArray::restore(Deserializer &d)
{
    const std::uint64_t n = d.getU64();
    if (n != entries.size())
        throwSimError(SimError::Kind::Snapshot,
                      "reuse data array holds %zu entries but the checkpoint "
                      "carries %llu",
                      entries.size(), (unsigned long long)n);
    for (std::uint64_t i = 0; i < entries.size(); ++i) {
        validLane[i] = d.getBool() ? 1 : 0;
        entries[i].tagSet = d.getU64();
        entries[i].tagWay = d.getU32();
    }
    d.beginSection("repl");
    repl->restore(d);
    d.endSection("repl");
}

} // namespace rc
