/**
 * @file
 * Reuse-cache tag array (paper Sections 3.1-3.2).
 *
 * Each entry holds a tag, the TO-MSI stable state, the full-map directory
 * information, and the forward pointer into the data array (valid only in
 * the tag+data states).  Replacement defaults to NRR: victims are chosen
 * at random among entries that are not recently reused and not present in
 * the private caches.
 */

#ifndef RC_REUSE_TAG_ARRAY_HH
#define RC_REUSE_TAG_ARRAY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/geometry.hh"
#include "cache/line.hh"
#include "cache/policy_dispatch.hh"
#include "cache/replacement.hh"
#include "coherence/directory.hh"
#include "common/types.hh"

namespace rc
{

/** The decoupled tag array. */
class ReuseTagArray
{
  public:
    /**
     * Payload of one tag entry.  The tag itself lives in a separate
     * contiguous lane (SoA) so find() scans packed 64-bit tags; write
     * it through setTag().
     */
    struct Entry
    {
        LlcState state = LlcState::I;   //!< I, TO, S or M
        DirectoryEntry dir;             //!< presence + ownership
        std::uint32_t fwdWay = 0;       //!< data-array way (S/M only)
        bool enteredData = false;       //!< this generation reached the
                                        //!< data array at least once
        bool reused = false;            //!< this generation saw a tag hit
        bool predicted = false;         //!< data pre-allocated by the
                                        //!< optional reuse predictor
    };

    /**
     * @param geometry tag-array sets/ways ("x MBeq" of the paper).
     * @param kind replacement policy (NRR in the paper).
     * @param num_cores for thread-aware policies.
     * @param seed RNG seed for randomized victim selection.
     */
    ReuseTagArray(const CacheGeometry &geometry, ReplKind kind,
                  std::uint32_t num_cores, std::uint64_t seed);

    /**
     * Locate @p line_addr without touching replacement state.
     * @param way_out way index when found.
     * @return the entry, or nullptr on a tag miss.
     */
    Entry *find(Addr line_addr, std::uint32_t &way_out);

    /** Entry at (set, way). */
    Entry &at(std::uint64_t set, std::uint32_t way);

    /** Const entry at (set, way). */
    const Entry &at(std::uint64_t set, std::uint32_t way) const;

    /** Stamp (set, way)'s tag from @p line_addr (fill path). */
    void setTag(std::uint64_t set, std::uint32_t way, Addr line_addr);

    /**
     * Record a reuse (tag hit) for replacement purposes.
     * @param pc requesting instruction (PC-indexed arena policies).
     * @param line_addr the hit line (signature hashing).
     */
    void touchHit(std::uint64_t set, std::uint32_t way, CoreId core,
                  Addr pc = 0, Addr line_addr = 0);

    /**
     * Record a fill (new generation) for replacement purposes.
     * @param insert_lru demote the fill to the LRU position (NCID
     *        selective mode; only meaningful with an LRU policy).
     * @param pc requesting instruction (PC-indexed arena policies).
     * @param line_addr the filled line (signature hashing).
     */
    void touchFill(std::uint64_t set, std::uint32_t way, CoreId core,
                   bool insert_lru = false, Addr pc = 0,
                   Addr line_addr = 0);

    /** Invalidate (set, way) after a TagRepl. */
    void invalidate(std::uint64_t set, std::uint32_t way);

    /**
     * Way to host a new tag in @p set: an invalid way when one exists,
     * otherwise the policy victim (NRR avoids ways whose directory shows
     * private-cache presence).
     * @param needs_eviction out: true when the returned way is occupied.
     * @param pc instruction causing the fill.
     * @param line_addr the incoming line.
     */
    std::uint32_t allocateWay(std::uint64_t set, CoreId core,
                              bool &needs_eviction, Addr pc = 0,
                              Addr line_addr = 0);

    /** Reconstruct the line address stored at (set, way). */
    Addr lineAddrOf(std::uint64_t set, std::uint32_t way) const;

    /** Geometry in force. */
    const CacheGeometry &geometry() const { return geom; }

    /** Number of non-invalid entries (tests). */
    std::uint64_t residentCount() const;

    /** Verify layer: the replacement policy (metadata sanity walks). */
    const ReplacementPolicy &policy() const { return *repl; }

    /** Fault-injection hook: mutable replacement policy. */
    ReplacementPolicy &policyMut() { return *repl; }

    /** Checkpoint entries and replacement metadata. */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    CacheGeometry geom;
    std::vector<std::uint64_t> tagLane; //!< SoA tag lane (the scan key)
    std::vector<Entry> entries;
    std::unique_ptr<ReplacementPolicy> repl;
    PolicyRef fast; //!< devirtualized view of *repl for the hot path
};

} // namespace rc

#endif // RC_REUSE_TAG_ARRAY_HH
