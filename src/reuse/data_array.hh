/**
 * @file
 * Reuse-cache data array (paper Section 3.3).
 *
 * Holds only lines that have shown reuse.  Never searched associatively:
 * the tag array's forward pointer names the exact way, and each entry's
 * reverse pointer names the owning tag entry so a data eviction can
 * invalidate the corresponding forward pointer.  The number of sets is a
 * power-of-two divisor of the tag array's set count and both arrays are
 * indexed with the least significant line-address bits, so the data-set
 * index is a suffix of the tag-set index.  A single set makes the array
 * fully associative (the paper's preferred configuration, with Clock
 * replacement).
 */

#ifndef RC_REUSE_DATA_ARRAY_HH
#define RC_REUSE_DATA_ARRAY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/geometry.hh"
#include "cache/policy_dispatch.hh"
#include "cache/replacement.hh"
#include "common/types.hh"

namespace rc
{

/** The decoupled data array. */
class ReuseDataArray
{
  public:
    /**
     * Reverse pointer of one data entry; occupancy lives in a separate
     * validity lane (SoA) scanned by allocateWay(), read via validAt().
     */
    struct Entry
    {
        std::uint64_t tagSet = 0;   //!< reverse pointer: tag-array set
        std::uint32_t tagWay = 0;   //!< reverse pointer: tag-array way
    };

    /**
     * @param geometry data-array sets/ways.
     * @param kind replacement policy (NRU set-associative, Clock FA).
     * @param seed RNG seed for randomized policies.
     */
    ReuseDataArray(const CacheGeometry &geometry, ReplKind kind,
                   std::uint64_t seed);

    /** Data-array set for a line that lives in tag-array set @p tag_set. */
    std::uint64_t
    setFor(std::uint64_t tag_set) const
    {
        return tag_set & (geom.numSets() - 1);
    }

    /**
     * Way to host a new data line in @p set: an invalid way when one
     * exists, otherwise the policy victim.
     * @param needs_eviction out: true when the returned way is occupied.
     */
    std::uint32_t allocateWay(std::uint64_t set, bool &needs_eviction);

    /** Install a line owned by tag entry (tag_set, tag_way). */
    void fill(std::uint64_t set, std::uint32_t way, std::uint64_t tag_set,
              std::uint32_t tag_way);

    /** Record a hit for replacement purposes. */
    void touchHit(std::uint64_t set, std::uint32_t way);

    /** Free (set, way) after a DataRepl or owning-tag eviction. */
    void invalidate(std::uint64_t set, std::uint32_t way);

    /** Entry at (set, way). */
    const Entry &at(std::uint64_t set, std::uint32_t way) const;

    /** Occupancy of (set, way). */
    bool validAt(std::uint64_t set, std::uint32_t way) const;

    /** Number of valid entries (tests). */
    std::uint64_t residentCount() const;

    /** Verify layer: the replacement policy (metadata sanity walks). */
    const ReplacementPolicy &policy() const { return *repl; }

    /** Fault-injection hook: mutable replacement policy. */
    ReplacementPolicy &policyMut() { return *repl; }

    /** Geometry in force. */
    const CacheGeometry &geometry() const { return geom; }

    /** Checkpoint entries and replacement metadata. */
    void save(Serializer &s) const;

    /** Restore a save()'d image. */
    void restore(Deserializer &d);

  private:
    CacheGeometry geom;
    std::vector<std::uint8_t> validLane; //!< occupancy lane (scan key)
    std::vector<Entry> entries;
    std::unique_ptr<ReplacementPolicy> repl;
    PolicyRef fast; //!< devirtualized view of *repl for the hot path
};

} // namespace rc

#endif // RC_REUSE_DATA_ARRAY_HH
