#include "service/supervisor.hh"

#include <algorithm>

#include "common/log.hh"
#include "service/run_request.hh"

namespace rc::svc
{

Supervisor::Supervisor(const SupervisorConfig &cfg, SimulateFn simulate,
                       PoisonIndex &poison)
    : cfg(cfg), simulate(std::move(simulate)), poison(poison)
{
    RC_ASSERT(this->simulate != nullptr, "supervisor needs a SimulateFn");
    RC_ASSERT(this->cfg.workers >= 1, "supervisor needs >= 1 worker");
    RC_ASSERT(this->cfg.poisonThreshold >= 1,
              "poison threshold must be >= 1");
    slots.resize(this->cfg.workers);
    for (std::uint32_t i = 0; i < this->cfg.workers; ++i)
        slots[i].worker = std::make_unique<WorkerProcess>(
            this->simulate, this->cfg.limits, i);
}

Supervisor::~Supervisor()
{
    shutdown();
}

Supervisor::Slot *
Supervisor::acquire(const std::atomic<bool> *abort,
                    std::atomic<std::uint64_t> *heartbeat)
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        if (stopping)
            throwSimError(SimError::Kind::Io,
                          "supervisor is shutting down");
        const Clock::time_point now = Clock::now();
        for (Slot &slot : slots) {
            if (slot.busy)
                continue;
            if (slot.worker->alive()) {
                slot.busy = true;
                ++stats.jobs;
                return &slot;
            }
            if (now < slot.spawnAfter)
                continue; // still backing off
            const bool respawn = slot.worker->incarnation() > 0;
            try {
                slot.worker->spawn();
            } catch (const SimError &err) {
                // fork/socketpair failure: treat like a death so the
                // slot backs off instead of hot-looping the syscall.
                warn("supervisor: %s", err.what());
                ++slot.consecutiveDeaths;
                const std::uint32_t shift =
                    std::min<std::uint32_t>(slot.consecutiveDeaths - 1,
                                            16);
                slot.spawnAfter =
                    now + std::chrono::milliseconds(std::min<std::uint64_t>(
                              static_cast<std::uint64_t>(
                                  cfg.restartBackoffBaseMs)
                                  << shift,
                              cfg.restartBackoffCapMs));
                continue;
            }
            if (respawn)
                ++stats.restarts;
            slot.busy = true;
            ++stats.jobs;
            return &slot;
        }
        if (abort && abort->load(std::memory_order_relaxed))
            throwSimError(SimError::Kind::Hang,
                          "job aborted while waiting for a sandboxed "
                          "worker (fleet dead or backing off)");
        // Queueing for a slot is progress, not a stall: keep beating so
        // the daemon's hang watchdog only ever fires on a job that went
        // silent INSIDE a worker.
        if (heartbeat)
            heartbeat->fetch_add(1, std::memory_order_relaxed);
        idleCv.wait_for(lock, std::chrono::milliseconds(20));
    }
}

void
Supervisor::release(Slot *slot, bool died)
{
    std::lock_guard<std::mutex> lock(mu);
    slot->busy = false;
    if (died) {
        ++slot->consecutiveDeaths;
        const std::uint32_t shift =
            std::min<std::uint32_t>(slot->consecutiveDeaths - 1, 16);
        slot->spawnAfter =
            Clock::now() +
            std::chrono::milliseconds(std::min<std::uint64_t>(
                static_cast<std::uint64_t>(cfg.restartBackoffBaseMs)
                    << shift,
                cfg.restartBackoffCapMs));
        deathTimes.push_back(Clock::now());
        pruneDeaths(Clock::now());
    } else {
        slot->consecutiveDeaths = 0;
    }
    idleCv.notify_one();
}

RunResult
Supervisor::run(const RunRequest &req, const std::atomic<bool> *abort,
                std::atomic<std::uint64_t> *heartbeat)
{
    Slot *slot = acquire(abort, heartbeat);
    WorkerProcess &w = *slot->worker;
    // Capture before the job: after a death releaseChild() clears the
    // pid but uid() still names the incarnation that just died.
    const std::uint64_t digest = requestDigest(req);
    try {
        RunResult res = w.run(req, abort, heartbeat, cfg.abortGraceMs);
        release(slot, /*died=*/false);
        return res;
    } catch (const SimError &err) {
        const bool died = w.childPid() < 0;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (died) {
                ++stats.crashes;
                if (w.lastDeath().forcedKill)
                    ++stats.hangKills;
                if (w.lastDeath().rlimitCpu)
                    ++stats.rlimitCpuKills;
            } else if (err.kind() == SimError::Kind::Crash) {
                ++stats.containedErrors;
            }
        }
        if (err.kind() == SimError::Kind::Crash &&
            poison.recordCrash(digest, w.uid(), cfg.poisonThreshold)) {
            {
                std::lock_guard<std::mutex> lock(mu);
                ++stats.poisonQuarantines;
            }
            warn("supervisor: request %s quarantined after killing %u "
                 "distinct workers",
                 digestHex(digest).c_str(), cfg.poisonThreshold);
        }
        release(slot, died);
        throw;
    }
}

bool
Supervisor::flapping() const
{
    std::lock_guard<std::mutex> lock(mu);
    pruneDeaths(Clock::now());
    return deathTimes.size() >= cfg.flapDeaths;
}

void
Supervisor::pruneDeaths(Clock::time_point now) const
{
    const Clock::time_point cutoff =
        now - std::chrono::milliseconds(cfg.flapWindowMs);
    while (!deathTimes.empty() && deathTimes.front() < cutoff)
        deathTimes.pop_front();
}

SupervisorCounters
Supervisor::counters() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stats;
}

void
Supervisor::shutdown()
{
    std::lock_guard<std::mutex> lock(mu);
    stopping = true;
    for (Slot &slot : slots)
        slot.worker->shutdown();
    idleCv.notify_all();
}

} // namespace rc::svc
