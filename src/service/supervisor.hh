/**
 * @file
 * Supervisor for the sandboxed worker fleet.
 *
 * The daemon's simulation threads hand jobs to the supervisor; the
 * supervisor owns every WorkerProcess and the crash-handling policy
 * around them:
 *
 *  - Placement: a job waits for an idle, live worker (respawning dead
 *    ones lazily when their backoff expires) and runs on it.
 *  - Classification: a worker death is counted by cause — crash,
 *    forced kill after an ignored abort, RLIMIT_CPU — and surfaces to
 *    the caller as the typed SimError thrown by WorkerProcess::run.
 *  - Restart with backoff: a slot that keeps dying waits exponentially
 *    longer before its next fork (base * 2^(deaths-1), capped), so a
 *    persistent fault cannot turn the daemon into a fork bomb.  A
 *    clean job resets the slot's backoff.
 *  - Flap detection: when the whole fleet accumulates too many deaths
 *    inside a sliding window, flapping() turns true and the daemon
 *    sheds new work with Busy + retry-after instead of queueing it
 *    onto a pool that cannot hold a worker up.
 *  - Poison attribution: every crash-class failure is charged to the
 *    request's digest in the PoisonIndex; a digest that kills enough
 *    DISTINCT workers is blacklisted persistently (see poison.hh).
 */

#ifndef RC_SERVICE_SUPERVISOR_HH
#define RC_SERVICE_SUPERVISOR_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "service/poison.hh"
#include "service/worker.hh"

namespace rc::svc
{

/** Fleet policy knobs (defaults are sane for tests and production). */
struct SupervisorConfig
{
    std::uint32_t workers = 2;    //!< fleet size (>= 1)
    WorkerLimits limits;          //!< per-child rlimit caps
    std::uint32_t poisonThreshold = 3; //!< distinct kills to quarantine
    //! grace between forwarding an abort and SIGKILLing a child that
    //! ignores it
    std::uint32_t abortGraceMs = 300;
    std::uint32_t restartBackoffBaseMs = 50;
    std::uint32_t restartBackoffCapMs = 2000;
    std::uint32_t flapWindowMs = 10000; //!< sliding window for flap detection
    std::uint32_t flapDeaths = 8;       //!< deaths in window => flapping
};

/** Monotonic fleet counters (exported into the daemon stats JSON). */
struct SupervisorCounters
{
    std::uint64_t jobs = 0;        //!< jobs dispatched to workers
    std::uint64_t crashes = 0;     //!< worker deaths mid-job (all causes)
    std::uint64_t hangKills = 0;   //!< forced SIGKILL: abort was ignored
    std::uint64_t rlimitCpuKills = 0; //!< SIGXCPU: RLIMIT_CPU cap fired
    //! child survived but reported a crash-class error (e.g. the
    //! address-space cap turned an allocation bomb into bad_alloc)
    std::uint64_t containedErrors = 0;
    std::uint64_t restarts = 0;    //!< respawns after a death
    std::uint64_t poisonQuarantines = 0; //!< digests newly blacklisted
};

/**
 * Thread-safe: any number of daemon simulation threads may call run()
 * concurrently; each job is placed on its own worker.
 */
class Supervisor
{
  public:
    Supervisor(const SupervisorConfig &cfg, SimulateFn simulate,
               PoisonIndex &poison);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /**
     * Run one job on some worker (blocking until one is available).
     * Crash-class outcomes are attributed to the request in the poison
     * index before the typed SimError propagates to the caller.
     * Throws SimError(Hang) without consuming a worker when @p abort
     * turns true while still waiting for one.
     */
    RunResult run(const RunRequest &req, const std::atomic<bool> *abort,
                  std::atomic<std::uint64_t> *heartbeat);

    /** Whether the fleet is dying faster than the flap threshold. */
    bool flapping() const;

    SupervisorCounters counters() const;

    /** SIGKILL + reap the whole fleet (idempotent; dtor calls it). */
    void shutdown();

  private:
    using Clock = std::chrono::steady_clock;

    struct Slot
    {
        std::unique_ptr<WorkerProcess> worker;
        bool busy = false;
        //! earliest time the next respawn of this slot may happen
        Clock::time_point spawnAfter{};
        std::uint32_t consecutiveDeaths = 0;
    };

    /**
     * Pick (respawning as needed) an idle live worker; marks it busy.
     * Bumps @p heartbeat while waiting: a queued job is making
     * progress, and charging fleet backoff to the hang watchdog would
     * mistype an ordinary crash as a hang.
     */
    Slot *acquire(const std::atomic<bool> *abort,
                  std::atomic<std::uint64_t> *heartbeat);
    void release(Slot *slot, bool died);
    void pruneDeaths(Clock::time_point now) const;

    SupervisorConfig cfg;
    SimulateFn simulate;
    PoisonIndex &poison;

    mutable std::mutex mu;
    std::condition_variable idleCv;
    std::vector<Slot> slots;
    //! death timestamps inside the flap window (pruned lazily)
    mutable std::deque<Clock::time_point> deathTimes;
    SupervisorCounters stats;
    bool stopping = false;
};

} // namespace rc::svc

#endif // RC_SERVICE_SUPERVISOR_HH
