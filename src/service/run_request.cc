#include "service/run_request.hh"

#include <cstdio>

#include "common/log.hh"
#include "sim/feed_cache.hh"
#include "snapshot/serializer.hh"

namespace rc::svc
{

namespace
{

/**
 * The canonical field walk, shared verbatim by the canonical encoding
 * and the wire codec so the two can never drift apart.  Every field of
 * every sub-config is enumerated explicitly; adding a field to a config
 * struct without extending this walk is caught by the round-trip test's
 * exhaustive field diff.
 */
void
putConfig(Serializer &s, const SystemConfig &c)
{
    s.beginSection("cfg");
    // The front-end prefix (cores, private hierarchy, prefetcher) is
    // factored out so the feed cache's key derivation and this
    // canonical encoding can never drift; it writes the exact same
    // head bytes this walk always has.
    putFrontEndConfig(s, c);
    s.putU32(c.xbar.numBanks);
    s.putU64(c.xbar.linkLatency);
    s.putU64(c.xbar.bankOccupancy);
    s.putU32(c.xbar.mshrPerBank);
    s.putU32(c.memory.numChannels);
    s.putU32(c.memory.dram.numBanks);
    s.putU32(c.memory.dram.pageBytes);
    s.putU64(c.memory.dram.rowMissLatency);
    s.putU64(c.memory.dram.rowHitLatency);
    s.putU64(c.memory.dram.rowConflictExtra);
    s.putU64(c.memory.dram.busCyclesPerLine);
    s.putU64(c.memory.dram.bankOccupancy);
    s.putU8(static_cast<std::uint8_t>(c.llcKind));
    s.putU64(c.conv.capacityBytes);
    s.putU32(c.conv.ways);
    s.putU8(static_cast<std::uint8_t>(c.conv.repl));
    s.putU32(c.conv.numCores);
    s.putU64(c.conv.tagLatency);
    s.putU64(c.conv.dataLatency);
    s.putU64(c.conv.interventionLatency);
    s.putU64(c.conv.seed);
    s.putString(c.conv.name);
    s.putU64(c.reuse.tagEquivBytes);
    s.putU32(c.reuse.tagWays);
    s.putU64(c.reuse.dataBytes);
    s.putU32(c.reuse.dataWays);
    s.putU8(static_cast<std::uint8_t>(c.reuse.tagRepl));
    s.putU8(static_cast<std::uint8_t>(c.reuse.dataRepl));
    s.putU32(c.reuse.numCores);
    s.putU64(c.reuse.tagLatency);
    s.putU64(c.reuse.dataLatency);
    s.putU64(c.reuse.interventionLatency);
    s.putU64(c.reuse.seed);
    s.putString(c.reuse.name);
    s.putBool(c.reuse.usePredictor);
    s.putU32(c.reuse.predictorEntries);
    s.putU64(c.ncid.tagEquivBytes);
    s.putU32(c.ncid.tagWays);
    s.putU64(c.ncid.dataBytes);
    s.putU32(c.ncid.numCores);
    s.putU64(c.ncid.tagLatency);
    s.putU64(c.ncid.dataLatency);
    s.putU64(c.ncid.interventionLatency);
    s.putDouble(c.ncid.selectiveFillRate);
    s.putU64(c.ncid.seed);
    s.putString(c.ncid.name);
    s.putU64(c.seed);
    s.putU32(c.capacityScale);
    s.endSection("cfg");
}

SystemConfig
getConfig(Deserializer &d)
{
    SystemConfig c;
    d.beginSection("cfg");
    c.numCores = d.getU32();
    c.priv.l1Bytes = d.getU64();
    c.priv.l1Ways = d.getU32();
    c.priv.l1Latency = d.getU64();
    c.priv.l2Bytes = d.getU64();
    c.priv.l2Ways = d.getU32();
    c.priv.l2Latency = d.getU64();
    c.prefetch.enable = d.getBool();
    c.prefetch.degree = d.getU32();
    c.prefetch.tableEntries = d.getU32();
    c.prefetch.regionShift = d.getU32();
    c.prefetch.minConfidence = d.getU32();
    c.xbar.numBanks = d.getU32();
    c.xbar.linkLatency = d.getU64();
    c.xbar.bankOccupancy = d.getU64();
    c.xbar.mshrPerBank = d.getU32();
    c.memory.numChannels = d.getU32();
    c.memory.dram.numBanks = d.getU32();
    c.memory.dram.pageBytes = d.getU32();
    c.memory.dram.rowMissLatency = d.getU64();
    c.memory.dram.rowHitLatency = d.getU64();
    c.memory.dram.rowConflictExtra = d.getU64();
    c.memory.dram.busCyclesPerLine = d.getU64();
    c.memory.dram.bankOccupancy = d.getU64();
    const std::uint8_t kind = d.getU8();
    if (kind > static_cast<std::uint8_t>(LlcKind::Ncid))
        throwSimError(SimError::Kind::Protocol,
                      "request carries unknown LLC kind %u", kind);
    c.llcKind = static_cast<LlcKind>(kind);
    c.conv.capacityBytes = d.getU64();
    c.conv.ways = d.getU32();
    c.conv.repl = static_cast<ReplKind>(d.getU8());
    c.conv.numCores = d.getU32();
    c.conv.tagLatency = d.getU64();
    c.conv.dataLatency = d.getU64();
    c.conv.interventionLatency = d.getU64();
    c.conv.seed = d.getU64();
    c.conv.name = d.getString();
    c.reuse.tagEquivBytes = d.getU64();
    c.reuse.tagWays = d.getU32();
    c.reuse.dataBytes = d.getU64();
    c.reuse.dataWays = d.getU32();
    c.reuse.tagRepl = static_cast<ReplKind>(d.getU8());
    c.reuse.dataRepl = static_cast<ReplKind>(d.getU8());
    c.reuse.numCores = d.getU32();
    c.reuse.tagLatency = d.getU64();
    c.reuse.dataLatency = d.getU64();
    c.reuse.interventionLatency = d.getU64();
    c.reuse.seed = d.getU64();
    c.reuse.name = d.getString();
    c.reuse.usePredictor = d.getBool();
    c.reuse.predictorEntries = d.getU32();
    c.ncid.tagEquivBytes = d.getU64();
    c.ncid.tagWays = d.getU32();
    c.ncid.dataBytes = d.getU64();
    c.ncid.numCores = d.getU32();
    c.ncid.tagLatency = d.getU64();
    c.ncid.dataLatency = d.getU64();
    c.ncid.interventionLatency = d.getU64();
    c.ncid.selectiveFillRate = d.getDouble();
    c.ncid.seed = d.getU64();
    c.ncid.name = d.getString();
    c.seed = d.getU64();
    c.capacityScale = d.getU32();
    d.endSection("cfg");
    return c;
}

void
putCanonical(Serializer &s, const RunRequest &req)
{
    putConfig(s, req.config);
    s.beginSection("mix");
    s.putU64(req.mix.apps.size());
    for (const std::string &app : req.mix.apps)
        s.putString(app);
    s.endSection("mix");
    s.beginSection("opt");
    s.putU64(req.seed);
    s.putU32(req.scale);
    s.putU64(req.warmup);
    s.putU64(req.measure);
    s.endSection("opt");
}

} // namespace

std::vector<std::uint8_t>
canonicalBytes(const RunRequest &req)
{
    Serializer s;
    putCanonical(s, req);
    // image() wraps the payload in the snapshot container (12-byte
    // header, trailing CRC32); the canonical form is the section-framed
    // payload alone, which both sides of the store comparison rebuild.
    std::vector<std::uint8_t> img = s.image();
    return std::vector<std::uint8_t>(img.begin() + 12, img.end() - 4);
}

std::uint64_t
requestDigest(const RunRequest &req)
{
    const std::vector<std::uint8_t> bytes = canonicalBytes(req);
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV-1a 64 offset basis
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
digestHex(std::uint64_t digest)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

void
encodeRequest(Serializer &s, const RunRequest &req)
{
    s.beginSection("runreq");
    putCanonical(s, req);
    s.beginSection("meta");
    s.putU64(req.deadlineMs);
    s.endSection("meta");
    s.endSection("runreq");
}

RunRequest
decodeRequest(Deserializer &d)
{
    RunRequest req;
    d.beginSection("runreq");
    req.config = getConfig(d);
    d.beginSection("mix");
    const std::uint64_t apps = d.getU64();
    if (apps > 1024)
        throwSimError(SimError::Kind::Protocol,
                      "request mix claims %llu applications",
                      static_cast<unsigned long long>(apps));
    req.mix.apps.resize(static_cast<std::size_t>(apps));
    for (std::string &app : req.mix.apps)
        app = d.getString();
    d.endSection("mix");
    d.beginSection("opt");
    req.seed = d.getU64();
    req.scale = d.getU32();
    req.warmup = d.getU64();
    req.measure = d.getU64();
    d.endSection("opt");
    d.beginSection("meta");
    req.deadlineMs = d.getU64();
    d.endSection("meta");
    d.endSection("runreq");
    if (req.scale == 0 || req.measure == 0)
        throwSimError(SimError::Kind::Protocol,
                      "request carries a zero scale or measure window");
    return req;
}

} // namespace rc::svc
