/**
 * @file
 * The resident sweep daemon: a Unix-domain-socket server that accepts
 * RunRequest frames, serves completed results from the persistent
 * ResultCache, and feeds misses through a bounded job queue into a
 * caller-supplied simulation callback.
 *
 * Robustness contract (exercised end to end by bench/stress_daemon and
 * tests/test_daemon):
 *  - Backpressure: a full queue (or a draining daemon) answers Busy
 *    with a retry-after hint instead of queueing unboundedly; nothing
 *    is silently dropped — the client retries or falls back.
 *  - Isolation: a malformed, truncated, oversized or version-mismatched
 *    frame poisons only its own connection (the stream is no longer
 *    framed, so it is closed after an Error reply); every other
 *    connection and every queued job proceeds untouched.
 *  - Watchdog: a job whose heartbeat stalls past hangTimeout, or whose
 *    request deadline expires, is cooperatively aborted through the
 *    same Cmp abort-flag wiring the sweep harness uses; the waiting
 *    client gets an Error frame, not a hung connection.
 *  - Drain: requestStop() (the SIGTERM path) refuses new work, lets
 *    in-flight jobs finish, persists the cache index and only then lets
 *    stop() tear the threads down.  kill -9 instead is recovered by
 *    ResultCache's startup scan.
 *
 * The daemon never simulates anything itself: SimulateFn keeps src/
 * free of a dependency on the bench harness — the CLIs and tests pass
 * in bench::simulateRequest.
 */

#ifndef RC_SERVICE_DAEMON_HH
#define RC_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/result_cache.hh"
#include "service/run_request.hh"
#include "service/simulate_fn.hh"
#include "sim/run_result.hh"

namespace rc
{
class EventTracer;
class FeedCache;
}

namespace rc::svc
{

class Supervisor;
class PoisonIndex;
struct SupervisorCounters;
struct PoisonStats;

/** Daemon tuning; defaults suit the tests and the stress bench. */
struct DaemonConfig
{
    std::string socketPath;           //!< UDS path (unlinked on bind)
    std::string cacheDir;             //!< ResultCache directory

    /**
     * Feed-cache directory the daemon's SimulateFn was configured with
     * ("" = no feed cache).  The daemon never opens blobs itself — the
     * harness-side simulate callback does — but knowing the directory
     * lets statsJson() export the shared FeedCache counters and the
     * worker loop attribute svc.feedHit/svc.feedMiss telemetry spans.
     */
    std::string feedCacheDir;
    std::uint32_t workers = 2;        //!< simulation worker threads
    std::size_t queueDepth = 64;      //!< bounded job queue capacity
    std::uint32_t retryAfterMs = 50;  //!< hint carried in Busy replies
    double hangTimeout = 0.0;         //!< stall watchdog seconds (0=off)
    int ioTimeoutMs = 30'000;         //!< per-frame socket I/O timeout

    /**
     * Host-clock span telemetry for the request lifecycle (accept,
     * cache probe, queue wait, simulate, reply); nullptr = off.
     */
    EventTracer *tracer = nullptr;

    /**
     * Fault injection (tests/stress only): truncate this many SimResult
     * replies mid-frame — the client must detect SimError(Protocol) and
     * recover by retrying.  Decremented as replies are mangled.
     */
    std::uint32_t faultTruncateReplies = 0;

    /**
     * Fault injection (tests/stress only): corrupt this many freshly
     * stored cache blobs on disk — the next lookup must demote them to
     * a re-simulation, never serve garbage.
     */
    std::uint32_t faultCorruptBlobs = 0;

    /**
     * Process isolation: run every simulation in a forked, rlimit-capped
     * worker process supervised for crash containment (see
     * supervisor.hh).  A crashing job then costs one child process and
     * one typed Error reply, never the daemon.
     */
    bool isolateWorkers = false;

    //! RLIMIT_CPU seconds per worker child (0 = uncapped; isolation only)
    std::uint64_t workerCpuLimitSeconds = 0;

    //! RLIMIT_AS bytes per worker child (0 = uncapped; skipped under
    //! ASan; isolation only)
    std::uint64_t workerAddressSpaceBytes = 0;

    /**
     * Distinct worker deaths attributed to one request digest before it
     * is blacklisted in the persistent poison index (isolation only).
     */
    std::uint32_t poisonThreshold = 3;

    //! ms between forwarding a watchdog abort to a child and SIGKILLing
    //! a child that ignores it (isolation only)
    std::uint32_t workerAbortGraceMs = 300;

    //! fleet deaths within a 10 s window before the daemon sheds new
    //! work with Busy instead of queueing onto a flapping pool
    std::uint32_t flapDeaths = 8;

    //! base/cap of the exponential per-slot respawn backoff after a
    //! worker death (isolation only)
    std::uint32_t workerRestartBackoffMs = 50;
    std::uint32_t workerRestartBackoffCapMs = 2000;
};

/** Monotonic daemon counters, exported via statsJson(). */
struct DaemonCounters
{
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t simulated = 0;      //!< jobs run to completion
    std::uint64_t coalesced = 0;      //!< requests piggybacked on a
                                      //!< duplicate in-flight job
    std::uint64_t sheds = 0;          //!< Busy replies (queue full/drain)
    std::uint64_t quarantines = 0;    //!< jobs that ended in SimError
    std::uint64_t hangAborts = 0;     //!< watchdog stall aborts
    std::uint64_t deadlineAborts = 0; //!< request-deadline aborts
    std::uint64_t protocolErrors = 0; //!< malformed frames seen
    std::uint64_t ioErrors = 0;       //!< socket I/O failures/timeouts
    std::uint64_t poisonRefused = 0;  //!< requests refused as quarantined
    std::uint64_t flapSheds = 0;      //!< Busy replies due to worker flap
};

/** The server; construct, start(), eventually requestStop()+stop(). */
class Daemon
{
  public:
    Daemon(const DaemonConfig &cfg, SimulateFn simulate);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind the socket and launch the accept, worker and watchdog
     * threads.  Throws SimError(Io) when the socket cannot be set up.
     */
    void start();

    /**
     * Begin draining: refuse new work (Busy), finish in-flight jobs,
     * persist the cache index.  Returns immediately; idempotent.
     * This is the SIGTERM handler's job.
     */
    void requestStop();

    /** Block until drained, then join every thread and close the
     *  socket.  Safe to call twice. */
    void stop();

    /** Whether start() ran and stop() has not. */
    bool running() const { return accepting.load(); }

    /** Whether a drain was requested (signal or Shutdown frame). */
    bool isDraining() const { return draining.load(); }

    /** Counter snapshot. */
    DaemonCounters counters() const;

    /** Counters + cache stats as a JSON document (StatsReply payload). */
    std::string statsJson() const;

    /** The underlying cache (tests poke blobs through it). */
    ResultCache &cache() { return store; }

    /** Whether jobs run in forked, sandboxed worker processes. */
    bool isolated() const { return fleet != nullptr; }

    /**
     * Fleet counters (zeroes when isolation is off); declared in
     * supervisor.hh.
     */
    SupervisorCounters fleetCounters() const;

    /** Poison-quarantine counters (declared in poison.hh). */
    PoisonStats poisonStats() const;

  private:
    struct Job;

    void acceptLoop();
    void serveConnection(int fd, std::uint32_t connId);
    /** @return false when the connection must close (mangled reply). */
    bool handleRequest(int fd, std::uint32_t connId,
                       const std::vector<std::uint8_t> &payload);
    void workerLoop();
    void watchdogLoop();
    /** @return false when fault injection truncated the reply. */
    bool sendResult(int fd, const RunRequest &req, const RunResult &res);

    DaemonConfig cfg;
    SimulateFn simulate;
    ResultCache store;

    //! Shared feed-cache handle (counters for statsJson / telemetry);
    //! null when cfg.feedCacheDir is empty or the directory is unusable.
    std::shared_ptr<FeedCache> feedCache;

    //! isolation mode only: persistent quarantine + worker fleet (the
    //! fleet holds a reference into the index, so order matters)
    std::unique_ptr<PoisonIndex> poison;
    std::unique_ptr<Supervisor> fleet;

    int listenFd = -1;
    int wakePipe[2] = {-1, -1}; //!< self-pipe unblocking the accept poll

    std::atomic<bool> accepting{false};    //!< accept loop live
    std::atomic<bool> draining{false};     //!< refuse new work
    std::atomic<bool> watchdogStop{false};
    std::atomic<std::int32_t> truncateBudget{0};
    std::atomic<std::int32_t> corruptBudget{0};

    std::thread acceptThread;
    std::vector<std::thread> workerThreads;
    std::thread watchdogThread;

    mutable std::mutex connMu;
    std::vector<std::thread> connThreads;
    std::vector<int> openFds; //!< live connection sockets (for drain)

    mutable std::mutex mu;           //!< queue + inflight + counters
    std::condition_variable workCv;  //!< workers wait here
    std::deque<std::shared_ptr<Job>> queue;
    std::unordered_map<std::uint64_t, std::shared_ptr<Job>> inflight;
    DaemonCounters stats;
};

} // namespace rc::svc

#endif // RC_SERVICE_DAEMON_HH
