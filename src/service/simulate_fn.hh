/**
 * @file
 * The service layer's simulation callback type, in its own header so
 * the daemon (which dispatches jobs) and the sandboxed worker (which
 * executes them in a forked child) can share it without the worker
 * depending on the whole daemon interface.
 */

#ifndef RC_SERVICE_SIMULATE_FN_HH
#define RC_SERVICE_SIMULATE_FN_HH

#include <atomic>
#include <cstdint>
#include <functional>

#include "service/run_request.hh"
#include "sim/run_result.hh"

namespace rc::svc
{

/**
 * The simulation callback: run @p req to completion, advancing
 * @p heartbeat (completed references) and honouring @p abort (set by
 * the daemon's watchdog; the simulator raises SimError(Hang) at its
 * next quiescent point).  Both pointers outlive the call.
 */
using SimulateFn = std::function<RunResult(
    const RunRequest &req, const std::atomic<bool> *abort,
    std::atomic<std::uint64_t> *heartbeat)>;

} // namespace rc::svc

#endif // RC_SERVICE_SIMULATE_FN_HH
