/**
 * @file
 * Persistent content-addressed result cache for the sweep daemon.
 *
 * Layout under the cache directory:
 *
 *   memo-<digest16hex>.bin   one completed result per blob, written
 *                            atomically (tmp + fsync + rename, the
 *                            snapshot discipline) so a crash mid-write
 *                            can never tear an entry under its final
 *                            name;
 *   cache.index              append-only bookkeeping of stored digests,
 *                            flock-guarded so concurrent writers (a
 *                            restarted daemon overlapping its draining
 *                            predecessor) never interleave torn lines.
 *
 * Every blob carries the full canonical request bytes next to the
 * result: a lookup verifies the container CRC AND compares those key
 * bytes against the probe before returning anything, so neither a
 * corrupted blob nor a digest collision can ever surface a wrong
 * answer — both silently demote to a cache miss and a re-simulation,
 * and corrupt blobs are unlinked on detection.
 *
 * Repeat hits are served from a bounded in-memory copy of decoded
 * entries; the blobs stay the durable truth (evicting the memory layer
 * only costs a verified disk re-read, never an answer).
 *
 * Startup recovery scans the directory: blobs are the source of truth
 * (an entry whose rename landed but whose index append did not is
 * adopted), stale *.tmp leftovers of a killed writer are deleted, and
 * the index is rewritten compacted.
 */

#ifndef RC_SERVICE_RESULT_CACHE_HH
#define RC_SERVICE_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "service/run_request.hh"
#include "sim/run_result.hh"

namespace rc::svc
{

/** Monotonic counters exported into the daemon's stats JSON. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t memoryHits = 0; //!< hits served without touching disk
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t corruptDropped = 0; //!< blobs failing CRC/key checks
    std::uint64_t recovered = 0;      //!< entries adopted at startup
};

/** The persistent store; thread-safe. */
class ResultCache
{
  public:
    /**
     * Open (creating if needed) the cache under @p dir and run startup
     * recovery.  Throws SimError(Io) when the directory cannot be
     * created or scanned.
     */
    explicit ResultCache(const std::string &dir);

    /**
     * Look @p req up.
     * @return true and fill @p out only when a blob for the digest
     *         exists, passes its CRC, and its canonical key bytes match
     *         @p req exactly; any defect demotes to a miss.
     */
    bool lookup(const RunRequest &req, RunResult &out);

    /** Persist @p res for @p req (atomic blob + index append). */
    void store(const RunRequest &req, const RunResult &res);

    /** Number of entries currently believed present. */
    std::size_t size() const;

    /** Counter snapshot (taken under the cache lock). */
    ResultCacheStats stats() const;

    /** Rewrite the compacted index (SIGTERM drain persistence). */
    void persistIndex();

    /** Blob path for @p digest (tests and fault injection). */
    std::string blobPath(std::uint64_t digest) const;

    /**
     * Drop the in-memory copy of @p digest so the next lookup re-reads
     * (and re-verifies) the blob.  Fault injection and tests use this to
     * exercise the disk path; correctness never depends on it.
     */
    void evictMemory(std::uint64_t digest);

    const std::string &directory() const { return dir; }

  private:
    /** A decoded entry resident in memory; blobs stay the durable
     *  truth, this only spares repeat hits the disk round trip. */
    struct MemoEntry
    {
        std::vector<std::uint8_t> key; //!< canonical request bytes
        RunResult result;
    };

    void appendIndex(std::uint64_t digest);
    void recover();

    std::string dir;
    mutable std::mutex mu;
    std::unordered_set<std::uint64_t> known; //!< digests with blobs
    std::unordered_map<std::uint64_t, MemoEntry> memo;
    ResultCacheStats counters;
};

} // namespace rc::svc

#endif // RC_SERVICE_RESULT_CACHE_HH
