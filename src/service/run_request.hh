/**
 * @file
 * The unit of work the sweep daemon serves: one (SystemConfig x Mix)
 * simulation with the deterministic harness options, plus its canonical
 * byte encoding and content digest.
 *
 * Canonicalization is the load-bearing piece: the persistent result
 * cache is keyed by a digest of the canonical encoding, so two requests
 * produce the same key if and only if they describe bit-identical
 * simulations.  The encoding therefore enumerates EVERY field of the
 * SystemConfig explicitly — including the sub-configs of inactive SLLC
 * kinds and the display names (a spurious cache miss costs a re-run; a
 * spurious hit would serve a wrong answer, which the store additionally
 * rules out by comparing the full canonical key bytes on every lookup).
 *
 * Non-deterministic request attributes (the client's deadline) ride in
 * the wire encoding but are excluded from the canonical bytes.
 */

#ifndef RC_SERVICE_RUN_REQUEST_HH
#define RC_SERVICE_RUN_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/system_config.hh"
#include "workloads/mixes.hh"

namespace rc
{
class Serializer;
class Deserializer;
}

namespace rc::svc
{

/** One simulation request. */
struct RunRequest
{
    SystemConfig config;
    Mix mix;

    // The deterministic harness options (RunOptions subset that shapes
    // the numbers; jobs/telemetry/checkpointing do not).
    std::uint64_t seed = 42;
    std::uint32_t scale = 8;
    std::uint64_t warmup = 3'000'000;
    std::uint64_t measure = 12'000'000;

    /**
     * Per-request deadline in milliseconds (0 = none).  The daemon
     * aborts the run via the hang-watchdog wiring when it expires.
     * NOT part of the canonical encoding: a deadline changes when an
     * answer stops being useful, never what the answer is.
     */
    std::uint64_t deadlineMs = 0;
};

/** Canonical bytes of @p req (excluding deadline); see file comment. */
std::vector<std::uint8_t> canonicalBytes(const RunRequest &req);

/** FNV-1a 64-bit digest of canonicalBytes(req): the cache key. */
std::uint64_t requestDigest(const RunRequest &req);

/** 16-hex-digit spelling of a digest (blob file names, logs). */
std::string digestHex(std::uint64_t digest);

/** Wire encoding: canonical fields + the deadline. */
void encodeRequest(Serializer &s, const RunRequest &req);
RunRequest decodeRequest(Deserializer &d);

} // namespace rc::svc

#endif // RC_SERVICE_RUN_REQUEST_HH
