#include "service/poison.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

#include "common/filelock.hh"
#include "common/log.hh"
#include "service/run_request.hh" // digestHex

namespace rc::svc
{

namespace
{

constexpr const char *poisonName = "poison.index";
constexpr const char *poisonHeader = "# rc poison index v1\n";

} // namespace

PoisonIndex::PoisonIndex(const std::string &dir) : dir(dir)
{
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        throwSimError(SimError::Kind::Io,
                      "cannot create poison directory '%s': %s",
                      dir.c_str(), std::strerror(errno));
    std::FILE *f = std::fopen((dir + "/" + poisonName).c_str(), "rb");
    if (!f)
        return;
    char line[128];
    while (std::fgets(line, sizeof(line), f)) {
        unsigned long long digest = 0;
        if (std::sscanf(line, "poison digest=%llx", &digest) == 1)
            blacklist.insert(digest);
    }
    std::fclose(f);
    recoveredCount = blacklist.size();
}

bool
PoisonIndex::quarantined(std::uint64_t digest) const
{
    std::lock_guard<std::mutex> lock(mu);
    return blacklist.count(digest) != 0;
}

bool
PoisonIndex::recordCrash(std::uint64_t digest, std::uint64_t worker_uid,
                         std::uint32_t threshold)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (blacklist.count(digest))
            return false; // already condemned
        auto &uids = crashes[digest];
        uids.insert(worker_uid);
        if (uids.size() < threshold)
            return false;
        blacklist.insert(digest);
        crashes.erase(digest);
    }
    // Persist outside the lock: a slow fsync must not stall the
    // supervisor's crash handling for other digests.
    appendQuarantine(digest);
    return true;
}

PoisonStats
PoisonIndex::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    PoisonStats out;
    out.tracked = crashes.size();
    out.quarantined = blacklist.size();
    out.recovered = recoveredCount;
    return out;
}

void
PoisonIndex::appendQuarantine(std::uint64_t digest)
{
    const std::string path = dir + "/" + poisonName;
    const bool fresh = ::access(path.c_str(), F_OK) != 0;
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f) {
        warn("poison index: cannot open '%s': %s", path.c_str(),
             std::strerror(errno));
        return;
    }
    char line[64];
    std::snprintf(line, sizeof(line), "poison digest=%s\n",
                  digestHex(digest).c_str());
    try {
        // flock orders appends against other daemons sharing the
        // directory; load tolerates a torn tail line regardless.
        ScopedFileLock flock(::fileno(f));
        if (fresh)
            std::fputs(poisonHeader, f);
        std::fputs(line, f);
        std::fflush(f);
        ::fsync(::fileno(f));
    } catch (const SimError &err) {
        warn("poison index: append skipped: %s", err.what());
    }
    std::fclose(f);
}

} // namespace rc::svc
