#include "service/client.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "service/frame.hh"
#include "snapshot/serializer.hh"

namespace rc::svc
{

namespace
{

std::vector<std::uint8_t>
requestPayload(const RunRequest &req)
{
    Serializer s;
    encodeRequest(s, req);
    return s.image();
}

/** Decode a Busy frame's retry-after hint (0 on a malformed payload). */
std::uint32_t
busyHintMs(const std::vector<std::uint8_t> &payload)
{
    try {
        Deserializer d(payload);
        d.beginSection("busy");
        const std::uint64_t ms = d.getU64();
        d.endSection("busy");
        return static_cast<std::uint32_t>(ms);
    } catch (const SimError &) {
        return 0;
    }
}

/** Re-throw the failure carried by an Error frame. */
[[noreturn]] void
throwErrorFrame(const std::vector<std::uint8_t> &payload)
{
    SimError::Kind kind = SimError::Kind::Io;
    std::string msg;
    decodeErrorPayload(payload, kind, msg);
    throw SimError(kind, "daemon: " + msg);
}

RunResult
decodeResult(const std::vector<std::uint8_t> &payload,
             const RunRequest &req)
{
    Deserializer d(payload);
    d.beginSection("simres");
    const std::uint64_t digest = d.getU64();
    if (digest != requestDigest(req))
        throwSimError(SimError::Kind::Protocol,
                      "result digest %s does not match request %s",
                      digestHex(digest).c_str(),
                      digestHex(requestDigest(req)).c_str());
    d.beginSection("result");
    RunResult res = loadRunResult(d);
    d.endSection("result");
    d.endSection("simres");
    return res;
}

} // namespace

RcClient::RcClient(const ClientConfig &cfg) : cfg(cfg), jitter(cfg.seed)
{
    RC_ASSERT(this->cfg.maxAttempts >= 1, "client needs >= 1 attempt");
}

RcClient::~RcClient()
{
    closeConnection();
}

int
RcClient::ensureConnected()
{
    if (sock < 0)
        sock = connectToDaemon();
    return sock;
}

void
RcClient::closeConnection()
{
    if (sock >= 0) {
        ::close(sock);
        sock = -1;
    }
}

int
RcClient::connectToDaemon()
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

std::uint32_t
RcClient::backoffDelayMs(std::uint32_t attempt, std::uint32_t server_hint)
{
    // Exponential base doubling per attempt, capped, plus up to 50%
    // deterministic jitter so a fleet of clients never thunders back in
    // lockstep; never sleep less than the server's own hint.
    std::uint64_t base = cfg.backoffBaseMs;
    for (std::uint32_t i = 0; i < attempt && base < cfg.backoffCapMs; ++i)
        base *= 2;
    base = std::min<std::uint64_t>(base, cfg.backoffCapMs);
    const std::uint64_t jittered = base + jitter.below(base / 2 + 1);
    return static_cast<std::uint32_t>(
        std::max<std::uint64_t>(jittered, server_hint));
}

RunResult
RcClient::simulate(const RunRequest &req)
{
    using Clock = std::chrono::steady_clock;
    ++stats.requests;
    const std::vector<std::uint8_t> payload = requestPayload(req);
    // The deadline bounds the whole retry schedule from the moment the
    // caller asked, not per attempt.
    const bool hasDeadline = req.deadlineMs > 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(req.deadlineMs);

    for (std::uint32_t attempt = 0; attempt < cfg.maxAttempts; ++attempt) {
        const int fd = ensureConnected();
        if (fd < 0)
            break; // unreachable: straight to the fallback

        std::uint32_t hint = 0;
        try {
            writeFrame(fd, MsgType::SimRequest, payload, cfg.ioTimeoutMs);
            Frame reply;
            if (!readFrame(fd, reply, cfg.resultTimeoutMs))
                throwSimError(SimError::Kind::Protocol,
                              "daemon closed before replying");
            switch (reply.type) {
              case MsgType::SimResult:
                ++stats.results;
                return decodeResult(reply.payload, req);
              case MsgType::Busy:
                hint = busyHintMs(reply.payload);
                ++stats.busyRetries;
                break;
              case MsgType::Error:
                // The daemon ran (or refused) the simulation and
                // reported a definite failure; retrying is pointless.
                throwErrorFrame(reply.payload);
              default:
                throwSimError(SimError::Kind::Protocol,
                              "unexpected reply type: %s",
                              toString(reply.type));
            }
        } catch (const SimError &err) {
            if (err.kind() != SimError::Kind::Protocol &&
                err.kind() != SimError::Kind::Io)
                throw; // a daemon-reported simulation failure
            // Torn reply, timeout, version mismatch: the stream can no
            // longer be trusted to be framed — drop the connection and
            // retry on a fresh one (the request is idempotent, it is
            // content-addressed).
            closeConnection();
            ++stats.reconnects;
        }

        if (attempt + 1 < cfg.maxAttempts) {
            std::uint64_t delay = backoffDelayMs(attempt, hint);
            if (hasDeadline) {
                const std::int64_t left =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
                if (left <= 0) {
                    // Budget gone: sleeping (or dialing again) can only
                    // overshoot.  Fail fast instead of arriving late.
                    ++stats.deadlineRespected;
                    throwSimError(SimError::Kind::Io,
                                  "deadline of %llu ms exhausted after "
                                  "%u attempts on '%s'",
                                  static_cast<unsigned long long>(
                                      req.deadlineMs),
                                  attempt + 1, cfg.socketPath.c_str());
                }
                if (delay > static_cast<std::uint64_t>(left)) {
                    delay = static_cast<std::uint64_t>(left);
                    ++stats.deadlineRespected;
                }
            }
            stats.backoffMsTotal += delay;
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
    }

    if (cfg.fallback) {
        ++stats.fallbacks;
        return cfg.fallback(req, nullptr, nullptr);
    }
    throwSimError(SimError::Kind::Io,
                  "daemon on '%s' unreachable or shedding after %u "
                  "attempts, and no fallback is configured",
                  cfg.socketPath.c_str(), cfg.maxAttempts);
}

bool
RcClient::ping()
{
    return !daemonStatsJson().empty();
}

std::string
RcClient::daemonStatsJson()
{
    const int fd = ensureConnected();
    if (fd < 0)
        return "";
    try {
        writeFrame(fd, MsgType::StatsRequest, {}, cfg.ioTimeoutMs);
        Frame reply;
        if (!readFrame(fd, reply, cfg.ioTimeoutMs) ||
            reply.type != MsgType::StatsReply) {
            closeConnection();
            return "";
        }
        return std::string(reply.payload.begin(), reply.payload.end());
    } catch (const SimError &) {
        closeConnection();
        return "";
    }
}

bool
RcClient::shutdownDaemon()
{
    const int fd = ensureConnected();
    if (fd < 0)
        return false;
    bool acked = false;
    try {
        writeFrame(fd, MsgType::Shutdown, {}, cfg.ioTimeoutMs);
        Frame reply;
        acked = readFrame(fd, reply, cfg.ioTimeoutMs) &&
                reply.type == MsgType::Ack;
    } catch (const SimError &) {
        acked = false;
    }
    closeConnection(); // the daemon is draining; nothing left to reuse
    return acked;
}

} // namespace rc::svc
