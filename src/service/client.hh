/**
 * @file
 * Client side of the sweep-daemon protocol: a persistent Unix-socket
 * connection (re-established only after an error — cache hits must not
 * pay a connect per request), RunRequest submission, and the full
 * resilience policy — jittered exponential backoff on Busy (honouring
 * the server's retry-after hint), reconnect-and-retry on torn replies,
 * and a bit-identical in-process fallback when the daemon is
 * unreachable or keeps shedding.
 *
 * The retry schedule is deterministic: the jitter draws from a seeded
 * Rng, so a test (or a bug report) replays the exact same backoff
 * sequence.  simulate() throws only when the daemon reports a
 * simulation failure (quarantine — retrying would fail identically) or
 * when every recovery avenue, including the fallback, is exhausted.
 *
 * A request carrying a deadline (RunRequest::deadlineMs > 0) bounds the
 * whole retry schedule, not just the server's execution: backoff sleeps
 * are clamped to the remaining budget and an exhausted budget fails
 * fast with SimError(Io) instead of sleeping past the deadline the
 * caller asked the SERVICE to honour.
 */

#ifndef RC_SERVICE_CLIENT_HH
#define RC_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "service/run_request.hh"
#include "service/simulate_fn.hh"
#include "sim/run_result.hh"

namespace rc::svc
{

/** Client tuning. */
struct ClientConfig
{
    std::string socketPath;

    /** Attempts before giving up on the daemon (>= 1). */
    std::uint32_t maxAttempts = 6;

    /** First backoff delay; doubles per retry up to backoffCapMs. */
    std::uint32_t backoffBaseMs = 20;
    std::uint32_t backoffCapMs = 2'000;

    /** Seed for the deterministic backoff jitter. */
    std::uint64_t seed = 1;

    /** Socket I/O timeout for connect and frame writes/short reads. */
    int ioTimeoutMs = 10'000;

    /**
     * How long to wait for a SimResult after the request was accepted
     * (a cold simulation takes real time; -1 = wait forever).
     */
    int resultTimeoutMs = -1;

    /**
     * In-process fallback invoked when the daemon is unreachable or
     * exhausts maxAttempts; the same deterministic machinery the daemon
     * runs, so results are bit-identical either way.  Null = no
     * fallback: those situations throw SimError(Io) instead.
     */
    SimulateFn fallback;
};

/** What the client had to do to get answers (test assertions). */
struct ClientCounters
{
    std::uint64_t requests = 0;
    std::uint64_t results = 0;       //!< SimResult frames consumed
    std::uint64_t busyRetries = 0;   //!< Busy replies slept through
    std::uint64_t reconnects = 0;    //!< torn replies / dead connections
    std::uint64_t fallbacks = 0;     //!< answered in-process
    std::uint64_t backoffMsTotal = 0;
    //! times the request deadline clamped a backoff sleep or cut the
    //! retry schedule short (the client never overshot the deadline)
    std::uint64_t deadlineRespected = 0;
};

/** One client; not thread-safe (use one per thread). */
class RcClient
{
  public:
    explicit RcClient(const ClientConfig &cfg);
    ~RcClient();

    RcClient(const RcClient &) = delete;
    RcClient &operator=(const RcClient &) = delete;

    /**
     * Obtain the result for @p req, applying the full policy described
     * in the file comment.  Throws SimError(Kind as reported) when the
     * daemon answers Error, SimError(Io) when everything failed and no
     * fallback is configured.
     */
    RunResult simulate(const RunRequest &req);

    /** Whether a daemon currently answers on the socket. */
    bool ping();

    /** The daemon's statsJson() ("" when unreachable). */
    std::string daemonStatsJson();

    /** Ask the daemon to drain (SIGTERM equivalent over the wire).
     *  @return true when the daemon acknowledged. */
    bool shutdownDaemon();

    ClientCounters counters() const { return stats; }

  private:
    /** @return connected fd or -1 when the daemon is unreachable. */
    int connectToDaemon();
    /** Reuse the open connection or dial a fresh one (-1 on failure). */
    int ensureConnected();
    /** Drop the persistent connection (after any I/O error). */
    void closeConnection();
    std::uint32_t backoffDelayMs(std::uint32_t attempt,
                                 std::uint32_t server_hint_ms);

    ClientConfig cfg;
    Rng jitter;
    ClientCounters stats;
    int sock = -1; //!< persistent daemon connection (-1 = not connected)
};

} // namespace rc::svc

#endif // RC_SERVICE_CLIENT_HH
