/**
 * @file
 * One sandboxed simulation worker: a forked child process that executes
 * jobs shipped to it over a socketpair using the daemon's own frame
 * codec (magic/version/length/CRC validation on both directions, so a
 * torn or bit-flipped result can never be consumed as an answer).
 *
 * Containment contract:
 *  - The child applies setrlimit caps (CPU seconds, address space)
 *    before touching any job, closes every inherited descriptor except
 *    its job pipe, and switches the log sink into the fork-safe raw
 *    write(2) mode — a worker can segfault, OOM, busy-loop or abort
 *    without taking the daemon, another worker, or any client with it.
 *  - Heartbeat and abort ride a MAP_SHARED page, not the pipe: the
 *    parent forwards the daemon watchdog's abort flag into the page and
 *    mirrors the child's heartbeat out of it, so the existing
 *    hang/deadline watchdog works unchanged across the process
 *    boundary, with no extra threads in the child (sanitizer-safe).
 *  - A child that dies mid-job (signal, rlimit kill, OOM-kill, nonzero
 *    exit) is reaped and classified; the job surfaces as a typed
 *    SimError — Kind::Crash, or Kind::Hang when the parent had to
 *    SIGKILL it for ignoring an abort — never as a torn connection.
 */

#ifndef RC_SERVICE_WORKER_HH
#define RC_SERVICE_WORKER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include <sys/types.h>

#include "service/run_request.hh"
#include "service/simulate_fn.hh"
#include "sim/run_result.hh"

namespace rc::svc
{

/** Per-worker resource caps applied in the child via setrlimit. */
struct WorkerLimits
{
    /**
     * RLIMIT_CPU in seconds (0 = unlimited).  A runaway busy loop is
     * killed by the kernel with SIGXCPU even when the cooperative
     * watchdog is off.
     */
    std::uint64_t cpuSeconds = 0;

    /**
     * RLIMIT_AS in bytes (0 = unlimited).  An allocation bomb sees
     * std::bad_alloc (reported as a typed Crash error) instead of
     * driving the host into the OOM killer.  Skipped automatically
     * under AddressSanitizer, whose shadow reservation would trip any
     * realistic cap at startup.
     */
    std::uint64_t addressSpaceBytes = 0;
};

/** How a worker child died (parent-side classification). */
struct WorkerDeath
{
    std::string detail;      //!< human-readable cause with pid/signal
    bool rlimitCpu = false;  //!< SIGXCPU: the RLIMIT_CPU cap fired
    bool forcedKill = false; //!< parent SIGKILLed it (ignored abort)
};

/**
 * One forked worker process.  Not thread-safe: the supervisor
 * serializes access per worker (one job in flight per child).
 */
class WorkerProcess
{
  public:
    /**
     * @param simulate runs in the CHILD after fork (the closure is
     *        inherited by the fork, so it needs no serialization).
     * @param limits   rlimit caps applied in the child.
     * @param index    stable worker slot number (logs, uid()).
     */
    WorkerProcess(SimulateFn simulate, WorkerLimits limits,
                  std::uint32_t index);
    ~WorkerProcess();

    WorkerProcess(const WorkerProcess &) = delete;
    WorkerProcess &operator=(const WorkerProcess &) = delete;

    /**
     * Fork the child and set up its pipe + shared page.  Throws
     * SimError(Io) when socketpair/mmap/fork fail.  Idempotent once
     * live; respawning after a death bumps incarnation().
     */
    void spawn();

    /**
     * Non-blocking liveness probe: reaps the child (waitpid WNOHANG)
     * when it has exited between jobs.
     */
    bool alive();

    /**
     * Run one job in the child.  Forwards @p abort into the shared page
     * (and SIGKILLs the child when the abort is ignored longer than
     * @p abort_grace_ms) and mirrors the child's heartbeat into
     * @p heartbeat while waiting.
     *
     * Throws the child's own typed SimError when the job failed
     * in-process (quarantine, integrity, hang...), SimError(Crash) when
     * the child died under the job, SimError(Hang) when it died to the
     * parent's ignored-abort kill.  After a throw, check alive(): a
     * dead worker must be respawned before its next job.
     */
    RunResult run(const RunRequest &req, const std::atomic<bool> *abort,
                  std::atomic<std::uint64_t> *heartbeat,
                  std::uint32_t abort_grace_ms);

    /** SIGKILL + reap + release the pipe and shared page (idempotent). */
    void shutdown();

    /** How the child of the last failed run() died. */
    const WorkerDeath &lastDeath() const { return death; }

    /** Stable slot number given at construction. */
    std::uint32_t index() const { return slot; }

    /** Times spawn() completed (1 = original child). */
    std::uint32_t incarnation() const { return spawns; }

    /**
     * Unique id of the CURRENT child process: (index << 32) |
     * incarnation.  The poison index counts distinct uids so K crashes
     * of one request are provably K dead processes, not one death
     * observed K times.
     */
    std::uint64_t uid() const
    {
        return (static_cast<std::uint64_t>(slot) << 32) | spawns;
    }

    pid_t childPid() const { return pid; }

    /**
     * Heartbeat + abort atomics on a MAP_SHARED page (defined in
     * worker.cc; public only so the child's job loop can touch it).
     */
    struct SharedPage;

  private:
    /** Blocking reap + classification of a dead child. */
    void reapAndClassify(bool killed_for_abort);

    /** Close the pipe, unmap the page, forget the pid (idempotent). */
    void releaseChild();

    SimulateFn simulate;
    WorkerLimits limits;
    std::uint32_t slot;
    std::uint32_t spawns = 0;

    pid_t pid = -1;
    int jobFd = -1;          //!< parent end of the socketpair
    SharedPage *shared = nullptr;
    WorkerDeath death;
};

} // namespace rc::svc

#endif // RC_SERVICE_WORKER_HH
