#include "service/worker.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include <dirent.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"
#include "service/frame.hh"
#include "snapshot/serializer.hh"

// AddressSanitizer reserves terabytes of shadow address space at
// startup; any realistic RLIMIT_AS cap would kill the child before its
// first job, so the cap is compiled out under ASan (the allocation-bomb
// backstop in the child's bad_alloc handler still applies).
#if defined(__SANITIZE_ADDRESS__)
#define RC_WORKER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RC_WORKER_ASAN 1
#endif
#endif

namespace rc::svc
{

using Clock = std::chrono::steady_clock;

/**
 * The parent<->child control page (MAP_SHARED | MAP_ANONYMOUS).  Plain
 * lock-free atomics work across fork because both processes map the
 * same physical page; no futexes, no pthread state.
 */
struct WorkerProcess::SharedPage
{
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<bool> abort{false};
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<bool>::is_always_lock_free,
              "shared-page atomics must not take a process-local lock");

namespace
{

/**
 * Close every descriptor the child inherited except stdio and its job
 * pipe.  The daemon's listening socket, client connections and cache
 * fds must not survive into the sandbox: a held client fd would defeat
 * the client's EOF detection for as long as the worker lives.
 */
void
closeInheritedFds(int keep_fd)
{
    DIR *dir = ::opendir("/proc/self/fd");
    if (!dir) {
        // Fallback: sweep a fixed range blindly.
        for (int fd = 3; fd < 1024; ++fd)
            if (fd != keep_fd)
                ::close(fd);
        return;
    }
    const int dir_fd = ::dirfd(dir);
    std::vector<int> victims;
    while (struct dirent *ent = ::readdir(dir)) {
        char *end = nullptr;
        const long fd = std::strtol(ent->d_name, &end, 10);
        if (end == ent->d_name || *end != '\0')
            continue; // "." / ".."
        if (fd <= 2 || fd == keep_fd || fd == dir_fd)
            continue;
        victims.push_back(static_cast<int>(fd));
    }
    ::closedir(dir);
    for (const int fd : victims)
        ::close(fd);
}

/** Apply the sandbox rlimits; never fatal (a cap of 0 means "none"). */
void
applyLimits(const WorkerLimits &limits)
{
    if (limits.cpuSeconds != 0) {
        // Hard limit one second above soft: SIGXCPU at the soft cap is
        // already fatal (default disposition), the hard cap's SIGKILL
        // is just the backstop should SIGXCPU ever be masked.
        struct rlimit rl;
        rl.rlim_cur = limits.cpuSeconds;
        rl.rlim_max = limits.cpuSeconds + 1;
        ::setrlimit(RLIMIT_CPU, &rl);
    }
#if !defined(RC_WORKER_ASAN)
    if (limits.addressSpaceBytes != 0) {
        struct rlimit rl;
        rl.rlim_cur = limits.addressSpaceBytes;
        rl.rlim_max = limits.addressSpaceBytes;
        ::setrlimit(RLIMIT_AS, &rl);
    }
#endif
}

/**
 * The child's job loop.  Runs forever on its job pipe: read a
 * SimRequest frame, simulate, reply SimResult (or a typed Error frame
 * for an in-process SimError / bad_alloc).  Exits 0 on clean EOF (the
 * supervisor retired this worker) or when the pipe dies (parent gone).
 */
[[noreturn]] void
workerChildMain(int job_fd, WorkerProcess::SharedPage *shared,
                const SimulateFn &simulate, const WorkerLimits &limits,
                std::uint32_t slot)
{
    enterChildProcessLogMode("rcw" + std::to_string(slot));
    // The daemon's handlers (drain-on-SIGTERM, SIGCHLD reaper) make no
    // sense in the sandbox; restore kernel defaults so an rlimit
    // SIGXCPU actually kills us.
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGCHLD, SIG_DFL);
    std::signal(SIGXCPU, SIG_DFL);
    std::signal(SIGPIPE, SIG_IGN);
    closeInheritedFds(job_fd);
    applyLimits(limits);

    for (;;) {
        Frame frame;
        try {
            if (!readFrame(job_fd, frame, /*timeout_ms=*/-1))
                std::_Exit(0); // clean retirement
        } catch (const SimError &) {
            std::_Exit(0); // pipe torn: the daemon is gone
        }
        MsgType replyType = MsgType::Error;
        std::vector<std::uint8_t> reply;
        if (frame.type != MsgType::SimRequest) {
            reply = encodeErrorPayload(
                SimError::Kind::Protocol,
                std::string("worker got unexpected frame type ") +
                    toString(frame.type));
        } else {
            try {
                Deserializer d(frame.payload);
                const RunRequest req = decodeRequest(d);
                const RunResult res =
                    simulate(req, &shared->abort, &shared->heartbeat);
                Serializer s;
                s.beginSection("simres");
                s.putU64(requestDigest(req));
                s.beginSection("result");
                saveRunResult(s, res);
                s.endSection("result");
                s.endSection("simres");
                reply = s.image();
                replyType = MsgType::SimResult;
            } catch (const SimError &err) {
                reply = encodeErrorPayload(err.kind(), err.what());
            } catch (const std::bad_alloc &) {
                // RLIMIT_AS (or a genuine OOM) surfaced as bad_alloc:
                // containment worked, report it as a crash-class error
                // instead of dying.
                reply = encodeErrorPayload(
                    SimError::Kind::Crash,
                    "worker ran out of address space (allocation "
                    "failure under the sandbox rlimit)");
            } catch (const std::exception &e) {
                reply = encodeErrorPayload(
                    SimError::Kind::Crash,
                    std::string("worker: unhandled exception: ") +
                        e.what());
            }
        }
        try {
            writeFrame(job_fd, replyType, reply, /*timeout_ms=*/-1);
        } catch (const SimError &) {
            std::_Exit(0); // parent vanished mid-reply
        }
    }
}

std::uint32_t
millisSince(Clock::time_point then)
{
    return static_cast<std::uint32_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - then)
            .count());
}

} // namespace

WorkerProcess::WorkerProcess(SimulateFn simulate, WorkerLimits limits,
                             std::uint32_t index)
    : simulate(std::move(simulate)), limits(limits), slot(index)
{
    RC_ASSERT(this->simulate != nullptr, "worker needs a SimulateFn");
}

WorkerProcess::~WorkerProcess()
{
    shutdown();
}

void
WorkerProcess::spawn()
{
    RC_ASSERT(pid < 0, "worker %u respawned while still live", slot);
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        throwSimError(SimError::Kind::Io,
                      "worker %u: socketpair failed: %s", slot,
                      std::strerror(errno));
    void *page = ::mmap(nullptr, sizeof(SharedPage),
                        PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (page == MAP_FAILED) {
        const int err = errno;
        ::close(fds[0]);
        ::close(fds[1]);
        throwSimError(SimError::Kind::Io,
                      "worker %u: mmap of control page failed: %s", slot,
                      std::strerror(err));
    }
    shared = new (page) SharedPage();

    const pid_t child = ::fork();
    if (child < 0) {
        const int err = errno;
        ::close(fds[0]);
        ::close(fds[1]);
        ::munmap(shared, sizeof(SharedPage));
        shared = nullptr;
        throwSimError(SimError::Kind::Io, "worker %u: fork failed: %s",
                      slot, std::strerror(err));
    }
    if (child == 0) {
        ::close(fds[0]);
        workerChildMain(fds[1], shared, simulate, limits, slot);
    }
    ::close(fds[1]);
    pid = child;
    jobFd = fds[0];
    ++spawns;
    death = WorkerDeath{};
}

bool
WorkerProcess::alive()
{
    if (pid < 0)
        return false;
    int status = 0;
    pid_t r;
    do {
        r = ::waitpid(pid, &status, WNOHANG);
    } while (r < 0 && errno == EINTR);
    if (r == 0)
        return true; // still running
    // Died between jobs (or waitpid failed, meaning it is already
    // gone): classify and release its resources.
    char buf[160];
    if (r == pid && WIFSIGNALED(status)) {
        death.rlimitCpu = WTERMSIG(status) == SIGXCPU;
        std::snprintf(buf, sizeof(buf),
                      "worker %u (pid %ld) died idle: signal %d (%s)",
                      slot, static_cast<long>(pid), WTERMSIG(status),
                      strsignal(WTERMSIG(status)));
    } else if (r == pid && WIFEXITED(status)) {
        std::snprintf(buf, sizeof(buf),
                      "worker %u (pid %ld) exited idle with status %d",
                      slot, static_cast<long>(pid), WEXITSTATUS(status));
    } else {
        std::snprintf(buf, sizeof(buf),
                      "worker %u (pid %ld) could not be reaped: %s",
                      slot, static_cast<long>(pid), std::strerror(errno));
    }
    death.detail = buf;
    releaseChild();
    return false;
}

RunResult
WorkerProcess::run(const RunRequest &req, const std::atomic<bool> *abort,
                   std::atomic<std::uint64_t> *heartbeat,
                   std::uint32_t abort_grace_ms)
{
    RC_ASSERT(pid > 0 && jobFd >= 0, "worker %u has no live child", slot);
    death = WorkerDeath{};
    shared->abort.store(false, std::memory_order_relaxed);

    Serializer s;
    encodeRequest(s, req);

    bool killedForAbort = false;
    Clock::time_point abortSeen{};
    Frame reply;
    bool haveReply = false;
    try {
        writeFrame(jobFd, MsgType::SimRequest, s.image(),
                   /*timeout_ms=*/5000);
        while (!haveReply) {
            struct pollfd pfd = {jobFd, POLLIN, 0};
            int rc;
            do {
                rc = ::poll(&pfd, 1, /*timeout_ms=*/20);
            } while (rc < 0 && errno == EINTR);
            if (rc < 0)
                throwSimError(SimError::Kind::Io,
                              "poll on worker %u pipe: %s", slot,
                              std::strerror(errno));
            // Mirror the child's heartbeat out to the daemon watchdog
            // and the watchdog's abort in to the child.
            if (heartbeat)
                heartbeat->store(shared->heartbeat.load(
                                     std::memory_order_relaxed),
                                 std::memory_order_relaxed);
            if (abort && abort->load(std::memory_order_relaxed) &&
                !killedForAbort) {
                shared->abort.store(true, std::memory_order_relaxed);
                if (abortSeen == Clock::time_point{}) {
                    abortSeen = Clock::now();
                } else if (millisSince(abortSeen) > abort_grace_ms) {
                    // The cooperative abort was ignored (a real hang,
                    // not a slow epoch): escalate to SIGKILL.
                    ::kill(pid, SIGKILL);
                    killedForAbort = true;
                }
            }
            if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            // Header bytes are ready (or the pipe died): a short
            // timeout here only bounds a child that dies mid-frame.
            haveReply = readFrame(jobFd, reply, /*timeout_ms=*/2000);
            if (!haveReply)
                break; // EOF: the child is dead
        }
    } catch (const SimError &) {
        haveReply = false; // torn pipe == dead child
    }

    if (!haveReply) {
        reapAndClassify(killedForAbort);
        const SimError::Kind kind = killedForAbort
                                        ? SimError::Kind::Hang
                                        : SimError::Kind::Crash;
        throw SimError(kind, std::string("[") + toString(kind) + "] " +
                                 death.detail);
    }

    if (reply.type == MsgType::Error) {
        // The child survived and reported a typed failure; rethrow it
        // with its original kind (the worker stays usable).
        SimError::Kind kind = SimError::Kind::Io;
        std::string msg;
        decodeErrorPayload(reply.payload, kind, msg);
        throw SimError(kind, msg);
    }
    if (reply.type != MsgType::SimResult) {
        shutdown();
        throwSimError(SimError::Kind::Crash,
                      "worker %u answered with a %s frame instead of a "
                      "result; retired", slot, toString(reply.type));
    }

    Deserializer d(reply.payload);
    d.beginSection("simres");
    const std::uint64_t digest = d.getU64();
    if (digest != requestDigest(req)) {
        shutdown();
        throwSimError(SimError::Kind::Crash,
                      "worker %u returned digest %s for request %s; "
                      "retired", slot, digestHex(digest).c_str(),
                      digestHex(requestDigest(req)).c_str());
    }
    d.beginSection("result");
    RunResult res = loadRunResult(d);
    d.endSection("result");
    d.endSection("simres");
    return res;
}

void
WorkerProcess::reapAndClassify(bool killed_for_abort)
{
    int status = 0;
    pid_t r;
    do {
        r = ::waitpid(pid, &status, 0);
    } while (r < 0 && errno == EINTR);

    char buf[200];
    if (r == pid && WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        death.rlimitCpu = sig == SIGXCPU;
        death.forcedKill = killed_for_abort && sig == SIGKILL;
        std::snprintf(
            buf, sizeof(buf),
            "worker %u (pid %ld, incarnation %u) killed by signal %d "
            "(%s)%s%s",
            slot, static_cast<long>(pid), spawns, sig, strsignal(sig),
            death.rlimitCpu ? " [RLIMIT_CPU]" : "",
            death.forcedKill ? " [forced: ignored abort]" : "");
    } else if (r == pid && WIFEXITED(status)) {
        std::snprintf(buf, sizeof(buf),
                      "worker %u (pid %ld, incarnation %u) exited with "
                      "status %d mid-job",
                      slot, static_cast<long>(pid), spawns,
                      WEXITSTATUS(status));
    } else {
        std::snprintf(buf, sizeof(buf),
                      "worker %u (pid %ld) vanished mid-job and could "
                      "not be reaped: %s",
                      slot, static_cast<long>(pid), std::strerror(errno));
    }
    death.detail = buf;
    releaseChild();
}

void
WorkerProcess::shutdown()
{
    if (pid > 0) {
        ::kill(pid, SIGKILL);
        int status = 0;
        pid_t r;
        do {
            r = ::waitpid(pid, &status, 0);
        } while (r < 0 && errno == EINTR);
    }
    releaseChild();
}

void
WorkerProcess::releaseChild()
{
    pid = -1;
    if (jobFd >= 0) {
        ::close(jobFd);
        jobFd = -1;
    }
    if (shared) {
        shared->~SharedPage();
        ::munmap(shared, sizeof(SharedPage));
        shared = nullptr;
    }
}

} // namespace rc::svc
