#include "service/result_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/filelock.hh"
#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace rc::svc
{

namespace
{

constexpr const char *indexName = "cache.index";
constexpr const char *indexHeader = "# rc result cache index v1\n";

/** In-memory entries kept before the memo map is wholesale dropped; a
 *  crude bound, but eviction costs only a disk re-read. */
constexpr std::size_t memoCapacity = 4096;

/** Parse the 16-hex digest out of "memo-<digest>.bin" (0 on mismatch). */
bool
digestFromBlobName(const std::string &name, std::uint64_t &digest)
{
    if (name.size() != 4 + 1 + 16 + 4 || name.rfind("memo-", 0) != 0 ||
        name.substr(name.size() - 4) != ".bin")
        return false;
    char *end = nullptr;
    const std::string hex = name.substr(5, 16);
    digest = std::strtoull(hex.c_str(), &end, 16);
    return end != nullptr && *end == '\0';
}

} // namespace

ResultCache::ResultCache(const std::string &dir) : dir(dir)
{
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        throwSimError(SimError::Kind::Io,
                      "cannot create cache directory '%s': %s",
                      dir.c_str(), std::strerror(errno));
    recover();
}

std::string
ResultCache::blobPath(std::uint64_t digest) const
{
    return dir + "/memo-" + digestHex(digest) + ".bin";
}

void
ResultCache::recover()
{
    // Blobs are the source of truth: a crash can leave the index behind
    // the directory (rename landed, append did not) or leave *.tmp
    // leftovers of a write that never completed.  Adopt the former,
    // delete the latter, then rewrite the index to match reality.
    std::unordered_set<std::uint64_t> indexed;
    {
        std::FILE *f = std::fopen((dir + "/" + indexName).c_str(), "rb");
        if (f) {
            char line[128];
            while (std::fgets(line, sizeof(line), f)) {
                unsigned long long digest = 0;
                if (std::sscanf(line, "entry digest=%llx", &digest) == 1)
                    indexed.insert(digest);
            }
            std::fclose(f);
        }
    }

    DIR *d = ::opendir(dir.c_str());
    if (!d)
        throwSimError(SimError::Kind::Io,
                      "cannot scan cache directory '%s': %s", dir.c_str(),
                      std::strerror(errno));
    std::vector<std::string> staleTmp;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
            staleTmp.push_back(dir + "/" + name);
            continue;
        }
        std::uint64_t digest = 0;
        if (!digestFromBlobName(name, digest))
            continue;
        known.insert(digest);
        if (!indexed.count(digest))
            ++counters.recovered;
    }
    ::closedir(d);
    for (const std::string &tmp : staleTmp)
        ::unlink(tmp.c_str());
    persistIndex();
}

bool
ResultCache::lookup(const RunRequest &req, RunResult &out)
{
    const std::uint64_t digest = requestDigest(req);
    const std::vector<std::uint8_t> probe = canonicalBytes(req);
    {
        std::lock_guard<std::mutex> lock(mu);
        const auto resident = memo.find(digest);
        if (resident != memo.end() && resident->second.key == probe) {
            out = resident->second.result;
            ++counters.hits;
            ++counters.memoryHits;
            return true;
        }
        if (!known.count(digest)) {
            ++counters.misses;
            return false;
        }
    }
    const std::string path = blobPath(digest);
    try {
        Deserializer d(path);
        d.beginSection("memo");
        if (d.getU64() != digest)
            throwSimError(SimError::Kind::Snapshot,
                          "blob '%s' carries a foreign digest",
                          path.c_str());
        const std::string key = d.getString();
        if (key.size() != probe.size() ||
            std::memcmp(key.data(), probe.data(), probe.size()) != 0) {
            // A digest collision, not corruption: the blob is some other
            // request's valid entry.  Miss without unlinking it.
            std::lock_guard<std::mutex> lock(mu);
            ++counters.misses;
            return false;
        }
        d.beginSection("result");
        out = loadRunResult(d);
        d.endSection("result");
        d.endSection("memo");
    } catch (const SimError &) {
        // Torn, truncated or bit-flipped blob: drop it and re-simulate.
        // Never a wrong answer, never a crash.
        ::unlink(path.c_str());
        std::lock_guard<std::mutex> lock(mu);
        known.erase(digest);
        memo.erase(digest);
        ++counters.corruptDropped;
        ++counters.misses;
        return false;
    }
    std::lock_guard<std::mutex> lock(mu);
    if (memo.size() >= memoCapacity)
        memo.clear();
    memo[digest] = MemoEntry{probe, out};
    ++counters.hits;
    return true;
}

void
ResultCache::store(const RunRequest &req, const RunResult &res)
{
    const std::uint64_t digest = requestDigest(req);
    const std::vector<std::uint8_t> key = canonicalBytes(req);
    Serializer s;
    s.beginSection("memo");
    s.putU64(digest);
    s.putString(std::string(key.begin(), key.end()));
    s.beginSection("result");
    saveRunResult(s, res);
    s.endSection("result");
    s.endSection("memo");
    try {
        s.writeFile(blobPath(digest));
    } catch (const SimError &err) {
        // Failing to persist costs a future re-simulation, nothing else.
        warn("result cache: cannot persist %s: %s",
             digestHex(digest).c_str(), err.what());
        return;
    }
    appendIndex(digest);
    std::lock_guard<std::mutex> lock(mu);
    known.insert(digest);
    if (memo.size() >= memoCapacity)
        memo.clear();
    memo[digest] = MemoEntry{key, res};
    ++counters.stores;
}

void
ResultCache::evictMemory(std::uint64_t digest)
{
    std::lock_guard<std::mutex> lock(mu);
    memo.erase(digest);
}

void
ResultCache::appendIndex(std::uint64_t digest)
{
    const std::string path = dir + "/" + indexName;
    const bool fresh = ::access(path.c_str(), F_OK) != 0;
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f) {
        warn("result cache: cannot open index '%s': %s", path.c_str(),
             std::strerror(errno));
        return;
    }
    char line[64];
    std::snprintf(line, sizeof(line), "entry digest=%s\n",
                  digestHex(digest).c_str());
    try {
        // flock orders this append against other daemon processes
        // sharing the directory; startup recovery tolerates a torn tail
        // anyway, but well-formed records make post-mortems readable.
        ScopedFileLock flock(::fileno(f));
        if (fresh)
            std::fputs(indexHeader, f);
        std::fputs(line, f);
        std::fflush(f);
        ::fsync(::fileno(f));
    } catch (const SimError &err) {
        warn("result cache: index append skipped: %s", err.what());
    }
    std::fclose(f);
}

void
ResultCache::persistIndex()
{
    std::unordered_set<std::uint64_t> snapshot;
    {
        std::lock_guard<std::mutex> lock(mu);
        snapshot = known;
    }
    const std::string path = dir + "/" + indexName;
    const std::string tmp = path + ".idxtmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("result cache: cannot rewrite index '%s': %s", path.c_str(),
             std::strerror(errno));
        return;
    }
    std::fputs(indexHeader, f);
    for (const std::uint64_t digest : snapshot)
        std::fprintf(f, "entry digest=%s\n", digestHex(digest).c_str());
    const bool ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        warn("result cache: cannot land the compacted index '%s'",
             path.c_str());
    }
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return known.size();
}

ResultCacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

} // namespace rc::svc
