/**
 * @file
 * Persistent poison-request quarantine.
 *
 * A request whose execution keeps killing sandboxed workers is not a
 * worker problem — it is a poison input (a simulator bug it alone
 * triggers, a pathological configuration, a fuzzer hit).  Restarting
 * workers for it forever would let one bad request grind the pool.
 *
 * The PoisonIndex tracks, per request digest, the set of DISTINCT
 * worker processes (WorkerProcess::uid: slot + incarnation) that died
 * executing it.  When that set reaches the quarantine threshold the
 * digest is blacklisted: appended to a flock-guarded `poison.index`
 * file next to the result cache's blobs, so the verdict survives
 * daemon restarts, and every later request with that digest is
 * answered immediately with a typed SimError(Crash) — no worker is
 * ever risked on it again.
 *
 * Distinctness matters: one death observed K times (retries racing the
 * reap) must not quarantine; K separate dead processes prove the
 * request, not the worker, is at fault.
 *
 * Crash ATTRIBUTION is deliberately not persisted — only the final
 * blacklist verdict is.  A half-counted digest after a daemon restart
 * just needs fresh kills to cross the threshold again.
 */

#ifndef RC_SERVICE_POISON_HH
#define RC_SERVICE_POISON_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace rc::svc
{

/** Counters exported into the daemon's stats JSON. */
struct PoisonStats
{
    std::uint64_t tracked = 0;     //!< digests with >= 1 attributed crash
    std::uint64_t quarantined = 0; //!< digests on the blacklist
    std::uint64_t recovered = 0;   //!< blacklist entries loaded from disk
};

/** Thread-safe; one instance per daemon, shared by the supervisor. */
class PoisonIndex
{
  public:
    /**
     * Load (or create) `poison.index` inside @p dir.  Torn tails from a
     * crashed append are tolerated line-by-line, like the result
     * cache's index.
     */
    explicit PoisonIndex(const std::string &dir);

    /** Whether @p digest is blacklisted (answer it without running). */
    bool quarantined(std::uint64_t digest) const;

    /**
     * Attribute one worker death to @p digest.
     * @param worker_uid the dead child's WorkerProcess::uid().
     * @param threshold  distinct dead workers required to blacklist.
     * @return true when THIS call moved the digest onto the blacklist
     *         (the caller logs / counts the quarantine event once).
     */
    bool recordCrash(std::uint64_t digest, std::uint64_t worker_uid,
                     std::uint32_t threshold);

    PoisonStats stats() const;

  private:
    void appendQuarantine(std::uint64_t digest);

    std::string dir;
    mutable std::mutex mu;
    //! digest -> distinct dead worker uids (in-memory only)
    std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
        crashes;
    std::unordered_set<std::uint64_t> blacklist;
    std::uint64_t recoveredCount = 0;
};

} // namespace rc::svc

#endif // RC_SERVICE_POISON_HH
