/**
 * @file
 * Length-framed, versioned, CRC-guarded message transport for the sweep
 * daemon's Unix-domain-socket protocol.
 *
 * Every message on the wire is one frame:
 *
 *   [0..3]   magic "RCF1" (u32 LE)
 *   [4..5]   protocol version (u16 LE)
 *   [6..7]   message type (u16 LE, MsgType)
 *   [8..15]  payload length (u64 LE)
 *   [16..19] CRC32 of the payload
 *   [20..)   payload bytes
 *
 * The reader validates magic, version, length bound and CRC before the
 * payload reaches any decoder, and classifies every defect as a
 * recoverable error:
 *
 *  - bad magic, version mismatch, oversized length, truncated payload,
 *    CRC mismatch           -> SimError(Protocol)
 *  - syscall failure, read/write timeout, peer gone mid-frame
 *                           -> SimError(Io)
 *
 * Both unwound one connection at most: the daemon's per-connection
 * loop catches them, answers with an Error frame when the socket is
 * still writable, and keeps every other connection running.
 */

#ifndef RC_SERVICE_FRAME_HH
#define RC_SERVICE_FRAME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh" // SimError::Kind

namespace rc::svc
{

/** Frame magic ("RCF1" little-endian). */
inline constexpr std::uint32_t frameMagic = 0x31464352;

/** Wire-protocol version carried in every frame header. */
inline constexpr std::uint16_t protocolVersion = 1;

/** Frame header size in bytes. */
inline constexpr std::size_t frameHeaderBytes = 20;

/**
 * Upper bound on a frame payload.  A SimRequest or SimResult is a few
 * KB; anything claiming more is a corrupt or hostile length field and
 * is rejected before a single payload byte is read, so a bad client
 * cannot make the daemon allocate unbounded memory.
 */
inline constexpr std::uint64_t maxFramePayload = 4u << 20;

/** Message types of the rc-daemon protocol. */
enum class MsgType : std::uint16_t
{
    SimRequest = 1,   //!< client -> daemon: run (config x mix), or serve
                      //!< it from the result cache
    SimResult = 2,    //!< daemon -> client: the RunResult payload
    Busy = 3,         //!< daemon -> client: queue full or draining;
                      //!< carries a retry-after hint
    Error = 4,        //!< daemon -> client: recoverable failure (kind +
                      //!< message)
    StatsRequest = 5, //!< client -> daemon: report service counters
    StatsReply = 6,   //!< daemon -> client: counters as a JSON string
    Shutdown = 7,     //!< client -> daemon: begin a graceful drain
    Ack = 8,          //!< daemon -> client: command accepted
};

/** Spelling for logs ("sim-request", "busy", ...). */
const char *toString(MsgType type);

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::vector<std::uint8_t> payload;
};

/** Encode a complete frame (header + payload) into one byte vector. */
std::vector<std::uint8_t> encodeFrame(MsgType type,
                                      const std::vector<std::uint8_t> &payload);

/**
 * Write one frame to @p fd, handling short writes; throws SimError(Io)
 * when the peer is gone or @p timeout_ms expires (-1 = no timeout).
 */
void writeFrame(int fd, MsgType type,
                const std::vector<std::uint8_t> &payload,
                int timeout_ms = -1);

/** Write pre-encoded frame bytes (fault-injection tests truncate them). */
void writeRaw(int fd, const std::uint8_t *data, std::size_t len,
              int timeout_ms = -1);

/**
 * Read one frame from @p fd.
 * @return false on a clean end-of-stream (the peer closed before any
 *         header byte); every other defect throws (see file comment).
 */
bool readFrame(int fd, Frame &out, int timeout_ms = -1);

/**
 * Decode one frame from an in-memory byte buffer (tests, and the fault
 * injector's truncation checks).  Same validation and errors as
 * readFrame; a buffer shorter than the framed length is a truncated
 * frame (SimError(Protocol)).
 */
Frame decodeFrame(const std::vector<std::uint8_t> &bytes);

/**
 * Payload of an Error frame: the carried SimError kind + message.
 * Shared by the daemon (client-facing replies), the client (typed
 * rethrow) and the sandboxed worker transport (child-side failures).
 */
std::vector<std::uint8_t> encodeErrorPayload(SimError::Kind kind,
                                             const std::string &msg);

/**
 * Decode an Error payload.
 * @return false on a malformed payload; @p kind and @p msg then hold
 *         safe defaults (Kind::Io, a generic message).
 */
bool decodeErrorPayload(const std::vector<std::uint8_t> &payload,
                        SimError::Kind &kind, std::string &msg);

} // namespace rc::svc

#endif // RC_SERVICE_FRAME_HH
