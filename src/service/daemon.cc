#include "service/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "service/frame.hh"
#include "service/poison.hh"
#include "service/supervisor.hh"
#include "sim/feed_cache.hh"
#include "snapshot/serializer.hh"
#include "telemetry/trace_event.hh"

namespace rc::svc
{

using Clock = std::chrono::steady_clock;

/** One queued/running simulation; shared by every coalesced waiter. */
struct Daemon::Job
{
    RunRequest req;
    std::uint64_t digest = 0;

    std::atomic<bool> abort{false};
    std::atomic<std::uint64_t> heartbeat{0};

    // Watchdog bookkeeping (guarded by the daemon mutex).
    bool started = false;
    bool hangAborted = false;
    bool deadlineAborted = false;
    Clock::time_point startTime;
    std::uint64_t lastBeat = 0;
    Clock::time_point lastBeatTime;

    // Completion handoff to the waiting connection threads.
    std::mutex jmu;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    SimError::Kind errKind = SimError::Kind::Io;
    std::string errMsg;
    RunResult result;
};

namespace
{

std::vector<std::uint8_t>
busyPayload(std::uint32_t retry_after_ms)
{
    Serializer s;
    s.beginSection("busy");
    s.putU64(retry_after_ms);
    s.endSection("busy");
    return s.image();
}

/** Best-effort reply on an already-compromised connection. */
void
trySendError(int fd, SimError::Kind kind, const std::string &msg,
             int timeout_ms)
{
    try {
        writeFrame(fd, MsgType::Error, encodeErrorPayload(kind, msg),
                   timeout_ms);
    } catch (const SimError &) {
        // The peer is gone or wedged; nothing more to say to it.
    }
}

/** Flip one byte in the middle of @p path (blob fault injection). */
void
flipByteInFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size > 0) {
        const long at = size / 2;
        std::fseek(f, at, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, at, SEEK_SET);
        std::fputc((c == EOF ? 0 : c) ^ 0x5a, f);
    }
    std::fclose(f);
}

} // namespace

Daemon::Daemon(const DaemonConfig &cfg, SimulateFn simulate)
    : cfg(cfg), simulate(std::move(simulate)), store(cfg.cacheDir)
{
    RC_ASSERT(this->simulate != nullptr, "daemon needs a SimulateFn");
    truncateBudget.store(static_cast<std::int32_t>(cfg.faultTruncateReplies));
    corruptBudget.store(static_cast<std::int32_t>(cfg.faultCorruptBlobs));
    if (!cfg.feedCacheDir.empty()) {
        try {
            // Same process-wide instance the SimulateFn uses, so the
            // counters exported below reflect its hits and misses.
            feedCache = FeedCache::open(cfg.feedCacheDir);
        } catch (const SimError &err) {
            warn("daemon: feed-cache stats unavailable: %s", err.what());
        }
    }
    if (cfg.isolateWorkers) {
        poison = std::make_unique<PoisonIndex>(cfg.cacheDir);
        SupervisorConfig sup;
        sup.workers = std::max<std::uint32_t>(cfg.workers, 1);
        sup.limits.cpuSeconds = cfg.workerCpuLimitSeconds;
        sup.limits.addressSpaceBytes = cfg.workerAddressSpaceBytes;
        sup.poisonThreshold = cfg.poisonThreshold;
        sup.abortGraceMs = cfg.workerAbortGraceMs;
        sup.flapDeaths = cfg.flapDeaths;
        sup.restartBackoffBaseMs = cfg.workerRestartBackoffMs;
        sup.restartBackoffCapMs = cfg.workerRestartBackoffCapMs;
        fleet = std::make_unique<Supervisor>(sup, this->simulate, *poison);
    }
}

Daemon::~Daemon()
{
    if (accepting.load())
        requestStop();
    stop();
}

void
Daemon::start()
{
    RC_ASSERT(listenFd < 0, "daemon started twice");
    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        throwSimError(SimError::Kind::Io, "cannot create socket: %s",
                      std::strerror(errno));

    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path))
        throwSimError(SimError::Kind::Io,
                      "socket path '%s' exceeds the %zu-byte sun_path "
                      "limit", cfg.socketPath.c_str(),
                      sizeof(addr.sun_path) - 1);
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg.socketPath.c_str()); // stale socket of a killed daemon
    if (::bind(listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 128) != 0) {
        const int err = errno;
        ::close(listenFd);
        listenFd = -1;
        throwSimError(SimError::Kind::Io,
                      "cannot bind/listen on '%s': %s",
                      cfg.socketPath.c_str(), std::strerror(err));
    }
    if (::pipe(wakePipe) != 0) {
        const int err = errno;
        ::close(listenFd);
        listenFd = -1;
        throwSimError(SimError::Kind::Io, "cannot create wake pipe: %s",
                      std::strerror(err));
    }

    accepting.store(true);
    acceptThread = std::thread([this] { acceptLoop(); });
    for (std::uint32_t i = 0; i < std::max<std::uint32_t>(cfg.workers, 1);
         ++i)
        workerThreads.emplace_back([this] { workerLoop(); });
    watchdogThread = std::thread([this] { watchdogLoop(); });
}

void
Daemon::requestStop()
{
    draining.store(true);
    // Persist what we know now; stop() compacts again once the last
    // in-flight job has landed its blob.
    store.persistIndex();
    workCv.notify_all();
}

void
Daemon::stop()
{
    if (listenFd < 0)
        return;
    draining.store(true);
    accepting.store(false);
    const char byte = 'x';
    (void)!::write(wakePipe[1], &byte, 1);
    if (acceptThread.joinable())
        acceptThread.join();
    ::close(listenFd);
    listenFd = -1;
    ::unlink(cfg.socketPath.c_str());

    workCv.notify_all();
    for (std::thread &t : workerThreads)
        if (t.joinable())
            t.join();
    workerThreads.clear();
    // Simulation threads are gone, so no job is mid-flight in a child:
    // retire the fleet now rather than leaving orphans to the dtor.
    if (fleet)
        fleet->shutdown();

    // Every job has completed and replied (or is about to); stop reads
    // only, so a reply still in flight drains to its client before the
    // connection thread sees EOF and exits.
    {
        std::lock_guard<std::mutex> lock(connMu);
        for (const int fd : openFds)
            ::shutdown(fd, SHUT_RD);
    }
    for (;;) {
        std::vector<std::thread> grabbed;
        {
            std::lock_guard<std::mutex> lock(connMu);
            grabbed.swap(connThreads);
        }
        if (grabbed.empty())
            break;
        for (std::thread &t : grabbed)
            if (t.joinable())
                t.join();
    }

    watchdogStop.store(true);
    if (watchdogThread.joinable())
        watchdogThread.join();

    ::close(wakePipe[0]);
    ::close(wakePipe[1]);
    wakePipe[0] = wakePipe[1] = -1;
    store.persistIndex();
}

void
Daemon::acceptLoop()
{
    std::uint32_t nextConnId = 0;
    while (accepting.load()) {
        struct pollfd pfds[2] = {{listenFd, POLLIN, 0},
                                 {wakePipe[0], POLLIN, 0}};
        int rc;
        do {
            rc = ::poll(pfds, 2, -1);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0 || (pfds[1].revents & POLLIN) || !accepting.load())
            return;
        if (!(pfds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        const std::uint32_t connId = nextConnId++;
        std::lock_guard<std::mutex> lock(connMu);
        openFds.push_back(fd);
        {
            std::lock_guard<std::mutex> slock(mu);
            ++stats.connections;
        }
        connThreads.emplace_back(
            [this, fd, connId] { serveConnection(fd, connId); });
    }
}

void
Daemon::serveConnection(int fd, std::uint32_t connId)
{
    for (;;) {
        Frame frame;
        try {
            if (!readFrame(fd, frame, cfg.ioTimeoutMs))
                break; // clean EOF: the client hung up between frames
        } catch (const SimError &err) {
            // A defective frame leaves the byte stream unframed; reply
            // (best effort) and close THIS connection only.
            {
                std::lock_guard<std::mutex> lock(mu);
                if (err.kind() == SimError::Kind::Protocol)
                    ++stats.protocolErrors;
                else
                    ++stats.ioErrors;
            }
            trySendError(fd, err.kind(), err.what(), cfg.ioTimeoutMs);
            break;
        }

        bool keepOpen = true;
        try {
            switch (frame.type) {
              case MsgType::SimRequest:
                keepOpen = handleRequest(fd, connId, frame.payload);
                break;
              case MsgType::StatsRequest: {
                const std::string json = statsJson();
                writeFrame(fd, MsgType::StatsReply,
                           std::vector<std::uint8_t>(json.begin(),
                                                     json.end()),
                           cfg.ioTimeoutMs);
                break;
              }
              case MsgType::Shutdown:
                requestStop();
                writeFrame(fd, MsgType::Ack, {}, cfg.ioTimeoutMs);
                break;
              default:
                // A well-framed message the server never expects
                // (e.g. a stray SimResult): recoverable, stream intact.
                {
                    std::lock_guard<std::mutex> lock(mu);
                    ++stats.protocolErrors;
                }
                trySendError(
                    fd, SimError::Kind::Protocol,
                    std::string("unexpected message type: ") +
                        toString(frame.type),
                    cfg.ioTimeoutMs);
                break;
            }
        } catch (const SimError &) {
            // Reply write failed (peer gone) — drop the connection.
            std::lock_guard<std::mutex> lock(mu);
            ++stats.ioErrors;
            break;
        }
        if (!keepOpen)
            break;
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(connMu);
    for (std::size_t i = 0; i < openFds.size(); ++i) {
        if (openFds[i] == fd) {
            openFds.erase(openFds.begin() + i);
            break;
        }
    }
}

bool
Daemon::handleRequest(int fd, std::uint32_t connId,
                      const std::vector<std::uint8_t> &payload)
{
    EventTracer *tracer = cfg.tracer;
    const std::uint64_t t0 = tracer ? tracer->hostNowMicros() : 0;

    RunRequest req;
    try {
        Deserializer d(payload);
        req = decodeRequest(d);
    } catch (const SimError &err) {
        // The frame itself was sound (CRC passed), its payload is not:
        // the stream is still synchronized, so reply and keep serving.
        {
            std::lock_guard<std::mutex> lock(mu);
            ++stats.protocolErrors;
        }
        trySendError(fd, SimError::Kind::Protocol,
                     std::string("bad request payload: ") + err.what(),
                     cfg.ioTimeoutMs);
        return true;
    }

    {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.requests;
    }

    RunResult cached;
    if (store.lookup(req, cached)) {
        {
            std::lock_guard<std::mutex> lock(mu);
            ++stats.cacheHits;
        }
        if (tracer)
            tracer->recordHost("svc.cacheHit", connId,
                               tracer->hostNowMicros() - t0,
                               requestDigest(req) & 0xffffffffu);
        return sendResult(fd, req, cached);
    }

    const std::uint64_t digest = requestDigest(req);

    if (poison && poison->quarantined(digest)) {
        // The digest has killed enough distinct workers; it will never
        // touch a worker again.  Typed refusal, not Busy: retrying is
        // pointless and the client must not fall back either (the same
        // request would crash an unsandboxed process).
        {
            std::lock_guard<std::mutex> lock(mu);
            ++stats.poisonRefused;
        }
        if (tracer)
            tracer->recordHost("svc.poisonRefused", connId, 0,
                               digest & 0xffffffffu);
        trySendError(fd, SimError::Kind::Crash,
                     "request " + digestHex(digest) +
                         " is quarantined: it crashed " +
                         std::to_string(cfg.poisonThreshold) +
                         " isolated workers",
                     cfg.ioTimeoutMs);
        return true;
    }

    if (fleet && fleet->flapping()) {
        // The fleet is dying faster than it can restart; queueing more
        // work would just line victims up behind the fault.  Shed with
        // a retry-after so clients back off while backoff heals it.
        {
            std::lock_guard<std::mutex> lock(mu);
            ++stats.sheds;
            ++stats.flapSheds;
        }
        if (tracer)
            tracer->recordHost("svc.flapShed", connId, 0,
                               cfg.retryAfterMs);
        writeFrame(fd, MsgType::Busy, busyPayload(cfg.retryAfterMs),
                   cfg.ioTimeoutMs);
        return true;
    }

    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.cacheMisses;
        auto it = inflight.find(digest);
        if (it != inflight.end()) {
            // An identical request is already queued or running: wait
            // on the same job instead of simulating twice.
            job = it->second;
            ++stats.coalesced;
        } else if (draining.load() || queue.size() >= cfg.queueDepth) {
            ++stats.sheds;
            if (tracer)
                tracer->recordHost("svc.shed", connId, 0,
                                   cfg.retryAfterMs);
            writeFrame(fd, MsgType::Busy, busyPayload(cfg.retryAfterMs),
                       cfg.ioTimeoutMs);
            return true;
        } else {
            job = std::make_shared<Job>();
            job->req = req;
            job->digest = digest;
            queue.push_back(job);
            inflight.emplace(digest, job);
            workCv.notify_one();
        }
    }

    {
        std::unique_lock<std::mutex> jlock(job->jmu);
        job->cv.wait(jlock, [&job] { return job->done; });
    }
    if (tracer)
        tracer->recordHost("svc.request", connId,
                           tracer->hostNowMicros() - t0,
                           digest & 0xffffffffu);
    if (job->failed) {
        writeFrame(fd, MsgType::Error,
                   encodeErrorPayload(job->errKind, job->errMsg),
                   cfg.ioTimeoutMs);
        return true;
    }
    return sendResult(fd, req, job->result);
}

bool
Daemon::sendResult(int fd, const RunRequest &req, const RunResult &res)
{
    Serializer s;
    s.beginSection("simres");
    s.putU64(requestDigest(req));
    s.beginSection("result");
    saveRunResult(s, res);
    s.endSection("result");
    s.endSection("simres");
    const std::vector<std::uint8_t> bytes =
        encodeFrame(MsgType::SimResult, s.image());
    if (truncateBudget.fetch_sub(1) > 0) {
        // Fault injection: send half the frame, then hang up.  The
        // client must flag SimError(Protocol), not consume garbage.
        writeRaw(fd, bytes.data(), bytes.size() / 2, cfg.ioTimeoutMs);
        return false;
    }
    truncateBudget.fetch_add(1); // undo the speculative decrement
    writeRaw(fd, bytes.data(), bytes.size(), cfg.ioTimeoutMs);
    return true;
}

void
Daemon::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            workCv.wait(lock, [this] {
                return !queue.empty() || draining.load();
            });
            if (queue.empty()) {
                if (draining.load())
                    return;
                continue;
            }
            job = queue.front();
            queue.pop_front();
            job->started = true;
            job->startTime = Clock::now();
            job->lastBeatTime = job->startTime;
        }

        EventTracer *tracer = cfg.tracer;
        const std::uint64_t t0 = tracer ? tracer->hostNowMicros() : 0;
        // Feed-cache attribution: the simulate callback replays or
        // captures front-end blobs internally, so the only observable
        // is the shared counter delta around the call.  In-process
        // workers only — a forked child's counters die with it.
        const FeedCacheStats feed0 =
            feedCache && !fleet ? feedCache->stats() : FeedCacheStats{};
        bool failed = false;
        SimError::Kind kind = SimError::Kind::Io;
        std::string msg;
        RunResult res;
        try {
            // Isolation routes the job through the supervisor into a
            // forked, rlimit-capped child; the abort/heartbeat wiring
            // is identical either way (the worker bridges it across
            // the process boundary via a shared page).
            res = fleet ? fleet->run(job->req, &job->abort,
                                     &job->heartbeat)
                        : simulate(job->req, &job->abort,
                                   &job->heartbeat);
        } catch (const SimError &err) {
            failed = true;
            kind = err.kind();
            msg = err.what();
        }

        if (!failed) {
            store.store(job->req, res);
            if (corruptBudget.fetch_sub(1) > 0) {
                // Mangle the blob AND evict the in-memory copy so the
                // next lookup must take the disk path and detect it.
                flipByteInFile(store.blobPath(job->digest));
                store.evictMemory(job->digest);
            } else {
                corruptBudget.fetch_add(1);
            }
        }

        {
            std::lock_guard<std::mutex> lock(mu);
            inflight.erase(job->digest);
            if (failed) {
                ++stats.quarantines;
                if (job->hangAborted)
                    ++stats.hangAborts;
                if (job->deadlineAborted)
                    ++stats.deadlineAborts;
            } else {
                ++stats.simulated;
            }
        }
        if (tracer) {
            tracer->recordHost("svc.simulate", 0,
                               tracer->hostNowMicros() - t0,
                               job->digest & 0xffffffffu);
            if (failed && kind == SimError::Kind::Crash)
                tracer->recordHost("svc.crash", 0,
                                   tracer->hostNowMicros() - t0,
                                   job->digest & 0xffffffffu);
            if (feedCache && !fleet) {
                const FeedCacheStats feed1 = feedCache->stats();
                if (feed1.hits > feed0.hits)
                    tracer->recordHost("svc.feedHit", 0,
                                       tracer->hostNowMicros() - t0,
                                       job->digest & 0xffffffffu);
                else if (feed1.misses > feed0.misses)
                    tracer->recordHost("svc.feedMiss", 0,
                                       tracer->hostNowMicros() - t0,
                                       job->digest & 0xffffffffu);
            }
        }

        {
            std::lock_guard<std::mutex> jlock(job->jmu);
            job->done = true;
            job->failed = failed;
            job->errKind = kind;
            job->errMsg = msg;
            job->result = res;
        }
        job->cv.notify_all();
    }
}

void
Daemon::watchdogLoop()
{
    while (!watchdogStop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const Clock::time_point now = Clock::now();
        std::lock_guard<std::mutex> lock(mu);
        for (auto &entry : inflight) {
            const std::shared_ptr<Job> &job = entry.second;
            if (!job->started || job->abort.load())
                continue;
            if (job->req.deadlineMs > 0) {
                const auto elapsed =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        now - job->startTime)
                        .count();
                if (static_cast<std::uint64_t>(elapsed) >
                    job->req.deadlineMs) {
                    job->deadlineAborted = true;
                    job->abort.store(true);
                    continue;
                }
            }
            if (cfg.hangTimeout > 0.0) {
                const std::uint64_t beat = job->heartbeat.load();
                if (beat != job->lastBeat) {
                    job->lastBeat = beat;
                    job->lastBeatTime = now;
                } else if (std::chrono::duration<double>(
                               now - job->lastBeatTime)
                               .count() > cfg.hangTimeout) {
                    job->hangAborted = true;
                    job->abort.store(true);
                }
            }
        }
    }
}

DaemonCounters
Daemon::counters() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stats;
}

SupervisorCounters
Daemon::fleetCounters() const
{
    return fleet ? fleet->counters() : SupervisorCounters{};
}

PoisonStats
Daemon::poisonStats() const
{
    return poison ? poison->stats() : PoisonStats{};
}

std::string
Daemon::statsJson() const
{
    const DaemonCounters c = counters();
    const ResultCacheStats cs = store.stats();
    const SupervisorCounters fc = fleetCounters();
    const PoisonStats ps = poisonStats();
    const FeedCacheStats fs =
        feedCache ? feedCache->stats() : FeedCacheStats{};
    std::ostringstream os;
    os << "{\n"
       << "  \"daemon\": {\n"
       << "    \"connections\": " << c.connections << ",\n"
       << "    \"requests\": " << c.requests << ",\n"
       << "    \"cache_hits\": " << c.cacheHits << ",\n"
       << "    \"cache_misses\": " << c.cacheMisses << ",\n"
       << "    \"simulated\": " << c.simulated << ",\n"
       << "    \"coalesced\": " << c.coalesced << ",\n"
       << "    \"sheds\": " << c.sheds << ",\n"
       << "    \"quarantines\": " << c.quarantines << ",\n"
       << "    \"hang_aborts\": " << c.hangAborts << ",\n"
       << "    \"deadline_aborts\": " << c.deadlineAborts << ",\n"
       << "    \"protocol_errors\": " << c.protocolErrors << ",\n"
       << "    \"io_errors\": " << c.ioErrors << ",\n"
       << "    \"poison_refused\": " << c.poisonRefused << ",\n"
       << "    \"flap_sheds\": " << c.flapSheds << "\n"
       << "  },\n"
       << "  \"isolation\": {\n"
       << "    \"enabled\": " << (fleet ? "true" : "false") << ",\n"
       << "    \"jobs\": " << fc.jobs << ",\n"
       << "    \"worker_crashes\": " << fc.crashes << ",\n"
       << "    \"hang_kills\": " << fc.hangKills << ",\n"
       << "    \"rlimit_cpu_kills\": " << fc.rlimitCpuKills << ",\n"
       << "    \"contained_errors\": " << fc.containedErrors << ",\n"
       << "    \"worker_restarts\": " << fc.restarts << ",\n"
       << "    \"poison_quarantines\": " << fc.poisonQuarantines << ",\n"
       << "    \"poison_tracked\": " << ps.tracked << ",\n"
       << "    \"poison_blacklisted\": " << ps.quarantined << ",\n"
       << "    \"poison_recovered\": " << ps.recovered << "\n"
       << "  },\n"
       << "  \"cache\": {\n"
       << "    \"entries\": " << store.size() << ",\n"
       << "    \"hits\": " << cs.hits << ",\n"
       << "    \"memory_hits\": " << cs.memoryHits << ",\n"
       << "    \"misses\": " << cs.misses << ",\n"
       << "    \"stores\": " << cs.stores << ",\n"
       << "    \"corrupt_dropped\": " << cs.corruptDropped << ",\n"
       << "    \"recovered\": " << cs.recovered << "\n"
       << "  },\n"
       << "  \"feed\": {\n"
       << "    \"enabled\": " << (feedCache ? "true" : "false") << ",\n"
       << "    \"feed_hits\": " << fs.hits << ",\n"
       << "    \"feed_misses\": " << fs.misses << ",\n"
       << "    \"stores\": " << fs.stores << ",\n"
       << "    \"corrupt_dropped\": " << fs.corruptDropped << ",\n"
       << "    \"recovered\": " << fs.recovered << "\n"
       << "  }\n"
       << "}\n";
    return os.str();
}

} // namespace rc::svc
