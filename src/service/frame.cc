#include "service/frame.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hh"
#include "snapshot/serializer.hh" // crc32

namespace rc::svc
{

namespace
{

void
putLe16(std::vector<std::uint8_t> &buf, std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putLe32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putLe64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t
getLe16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
getLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t
getLe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Block until @p fd is ready for @p events or the timeout expires. */
void
waitReady(int fd, short events, int timeout_ms, const char *what)
{
    struct pollfd pfd = {fd, events, 0};
    int rc;
    do {
        rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        throwSimError(SimError::Kind::Io, "poll failed while %s: %s",
                      what, std::strerror(errno));
    if (rc == 0)
        throwSimError(SimError::Kind::Io, "timed out while %s", what);
}

/**
 * Read exactly @p len bytes.
 * @return bytes read before a clean EOF; only ever less than @p len
 *         when @p eof_ok and the stream ended on a frame boundary.
 */
std::size_t
readExact(int fd, void *buf, std::size_t len, int timeout_ms, bool eof_ok,
          const char *what)
{
    std::size_t got = 0;
    auto *p = static_cast<std::uint8_t *>(buf);
    while (got < len) {
        waitReady(fd, POLLIN, timeout_ms, what);
        const ssize_t n = ::recv(fd, p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
                continue;
            throwSimError(SimError::Kind::Io, "read failed while %s: %s",
                          what, std::strerror(errno));
        }
        if (n == 0) {
            if (eof_ok && got == 0)
                return 0;
            throwSimError(SimError::Kind::Protocol,
                          "truncated frame: peer closed after %zu of %zu "
                          "bytes while %s", got, len, what);
        }
        got += static_cast<std::size_t>(n);
    }
    return got;
}

void
validateHeader(const std::uint8_t *hdr, MsgType &type, std::uint64_t &len,
               std::uint32_t &crc)
{
    const std::uint32_t magic = getLe32(hdr);
    if (magic != frameMagic)
        throwSimError(SimError::Kind::Protocol,
                      "bad frame magic 0x%08x (expected 0x%08x)", magic,
                      frameMagic);
    const std::uint16_t version = getLe16(hdr + 4);
    if (version != protocolVersion)
        throwSimError(SimError::Kind::Protocol,
                      "protocol version mismatch: peer speaks v%u, this "
                      "build speaks v%u", version, protocolVersion);
    type = static_cast<MsgType>(getLe16(hdr + 6));
    len = getLe64(hdr + 8);
    if (len > maxFramePayload)
        throwSimError(SimError::Kind::Protocol,
                      "oversized frame: %llu payload bytes exceed the "
                      "%llu-byte limit",
                      static_cast<unsigned long long>(len),
                      static_cast<unsigned long long>(maxFramePayload));
    crc = getLe32(hdr + 16);
}

void
checkPayloadCrc(const std::vector<std::uint8_t> &payload,
                std::uint32_t expect)
{
    const std::uint32_t got =
        payload.empty() ? crc32(nullptr, 0)
                        : crc32(payload.data(), payload.size());
    if (got != expect)
        throwSimError(SimError::Kind::Protocol,
                      "frame payload CRC mismatch: computed 0x%08x, "
                      "header says 0x%08x", got, expect);
}

} // namespace

const char *
toString(MsgType type)
{
    switch (type) {
      case MsgType::SimRequest: return "sim-request";
      case MsgType::SimResult: return "sim-result";
      case MsgType::Busy: return "busy";
      case MsgType::Error: return "error";
      case MsgType::StatsRequest: return "stats-request";
      case MsgType::StatsReply: return "stats-reply";
      case MsgType::Shutdown: return "shutdown";
      case MsgType::Ack: return "ack";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encodeFrame(MsgType type, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(frameHeaderBytes + payload.size());
    putLe32(out, frameMagic);
    putLe16(out, protocolVersion);
    putLe16(out, static_cast<std::uint16_t>(type));
    putLe64(out, payload.size());
    putLe32(out, payload.empty()
                     ? crc32(nullptr, 0)
                     : crc32(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void
writeRaw(int fd, const std::uint8_t *data, std::size_t len, int timeout_ms)
{
    std::size_t sent = 0;
    while (sent < len) {
        waitReady(fd, POLLOUT, timeout_ms, "writing a frame");
        // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not as a
        // process-killing SIGPIPE.
        const ssize_t n =
            ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
                continue;
            throwSimError(SimError::Kind::Io,
                          "write failed after %zu of %zu frame bytes: %s",
                          sent, len, std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

void
writeFrame(int fd, MsgType type, const std::vector<std::uint8_t> &payload,
           int timeout_ms)
{
    const std::vector<std::uint8_t> bytes = encodeFrame(type, payload);
    writeRaw(fd, bytes.data(), bytes.size(), timeout_ms);
}

bool
readFrame(int fd, Frame &out, int timeout_ms)
{
    std::uint8_t hdr[frameHeaderBytes];
    if (readExact(fd, hdr, sizeof(hdr), timeout_ms, /*eof_ok=*/true,
                  "reading a frame header") == 0)
        return false;
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    validateHeader(hdr, out.type, len, crc);
    out.payload.assign(static_cast<std::size_t>(len), 0);
    if (len != 0)
        readExact(fd, out.payload.data(), out.payload.size(), timeout_ms,
                  /*eof_ok=*/false, "reading a frame payload");
    checkPayloadCrc(out.payload, crc);
    return true;
}

std::vector<std::uint8_t>
encodeErrorPayload(SimError::Kind kind, const std::string &msg)
{
    Serializer s;
    s.beginSection("err");
    s.putU8(static_cast<std::uint8_t>(kind));
    s.putString(msg);
    s.endSection("err");
    return s.image();
}

bool
decodeErrorPayload(const std::vector<std::uint8_t> &payload,
                   SimError::Kind &kind, std::string &msg)
{
    kind = SimError::Kind::Io;
    msg = "peer reported an undecodable error";
    try {
        Deserializer d(payload);
        d.beginSection("err");
        const std::uint8_t raw = d.getU8();
        // An unknown kind from a newer peer degrades to Io rather than
        // aliasing onto a random enumerator.
        if (raw <= static_cast<std::uint8_t>(SimError::Kind::Crash))
            kind = static_cast<SimError::Kind>(raw);
        msg = d.getString();
        d.endSection("err");
        return true;
    } catch (const SimError &) {
        return false;
    }
}

Frame
decodeFrame(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < frameHeaderBytes)
        throwSimError(SimError::Kind::Protocol,
                      "truncated frame: %zu bytes is shorter than the "
                      "%zu-byte header", bytes.size(), frameHeaderBytes);
    Frame out;
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    validateHeader(bytes.data(), out.type, len, crc);
    if (bytes.size() - frameHeaderBytes < len)
        throwSimError(SimError::Kind::Protocol,
                      "truncated frame: header promises %llu payload "
                      "bytes, buffer holds %zu",
                      static_cast<unsigned long long>(len),
                      bytes.size() - frameHeaderBytes);
    out.payload.assign(bytes.begin() + frameHeaderBytes,
                       bytes.begin() + frameHeaderBytes +
                           static_cast<std::size_t>(len));
    checkPayloadCrc(out.payload, crc);
    return out;
}

} // namespace rc::svc
