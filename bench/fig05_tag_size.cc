/**
 * @file
 * Figure 5 reproduction: speedup vs the 8 MB LRU baseline, sweeping the
 * tag array size for each data array size (fully-associative data).
 * The paper's conclusion: the optimum tag:data capacity ratio is 4.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 5: tag array size per data array size",
        "optimum tag:data ratio is 4; RC-16/8 outperforms conv 16MB; "
        "RC-4/0.5 matches conv 4MB; conv 4/16MB lines at ~0.95/1.094");

    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const auto base =
        bench::runBaselineOverMixes(bench::baselineFor(opt), mixes, opt);

    // Conventional reference lines.
    Table refs("Conventional LRU references (lines in the figure)");
    refs.header({"config", "speedup"});
    for (double mb : {4.0, 16.0}) {
        const auto s = bench::compareAgainst(
            conventionalSystem(mb, ReplKind::LRU, opt.scale), mixes, base,
            opt);
        char name[32];
        std::snprintf(name, sizeof(name), "conv-%gMB", mb);
        refs.row({name, fmtDouble(s.mean)});
        std::cout << "  " << name << ": " << fmtDouble(s.mean) << "\n"
                  << std::flush;
    }
    refs.print(std::cout);

    // Tag sweeps per data size.  The tag array must cover at least the
    // private caches (2 MBeq) and the data array.
    struct Sweep
    {
        double dataMb;
        std::vector<double> tagMbeq;
    };
    const Sweep sweeps[] = {
        {8.0, {16, 32, 64}},
        {4.0, {8, 16, 32}},
        {2.0, {4, 8, 16}},
        {1.0, {2, 4, 8}},
        {0.5, {2, 4, 8}},
    };

    Table t("Reuse cache speedup by tag and data size");
    t.header({"config", "speedup", "tag:data"});
    for (const Sweep &sw : sweeps) {
        for (double tag : sw.tagMbeq) {
            const SystemConfig sys =
                reuseSystem(tag, sw.dataMb, 0, opt.scale);
            const auto s = bench::compareAgainst(sys, mixes, base, opt);
            char name[32];
            std::snprintf(name, sizeof(name), "RC-%g/%g", tag, sw.dataMb);
            char ratio[16];
            std::snprintf(ratio, sizeof(ratio), "%g", tag / sw.dataMb);
            t.row({name, fmtDouble(s.mean), ratio});
            std::cout << "  " << name << ": " << fmtDouble(s.mean)
                      << "\n" << std::flush;
        }
    }
    t.print(std::cout);

    std::cout << "\npaper reference: per data size, speedup saturates "
                 "once tag:data reaches ~4 (RC-16/4 barely beats RC-8/4, "
                 "RC-32/8 barely beats RC-16/8)\n";
    return 0;
}
