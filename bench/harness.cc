#include "harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "reuse/reuse_cache.hh"

namespace rc::bench
{

RunOptions
parseArgs(int argc, char **argv)
{
    RunOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
        };
        if (const char *v = value("--mixes=")) {
            opt.mixCount = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--scale=")) {
            opt.scale = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--warmup=")) {
            opt.warmup = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--measure=")) {
            opt.measure = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--seed=")) {
            opt.seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (std::strcmp(arg, "--full") == 0) {
            opt.mixCount = 100;
            opt.warmup = 5'000'000;
            opt.measure = 20'000'000;
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf("flags: --mixes=N --scale=N --warmup=N "
                        "--measure=N --seed=N --full\n");
            std::exit(0);
        } else {
            fatal("unknown flag '%s' (try --help)", arg);
        }
    }
    if (opt.mixCount == 0 || opt.scale == 0 || opt.measure == 0)
        fatal("mixes, scale and measure must be positive");
    return opt;
}

namespace
{

RunResult
collect(Cmp &cmp)
{
    RunResult res;
    res.aggregateIpc = cmp.aggregateIpc();
    for (CoreId c = 0; c < cmp.numCores(); ++c) {
        res.coreIpc.push_back(cmp.ipc(c));
        res.mpki.push_back(cmp.measuredMpki(c));
    }
    const StatSet &llc = cmp.llc().stats();
    res.llcAccesses = llc.lookup("accesses");
    if (llc.has("tagMisses"))
        res.llcMemFetches = llc.lookup("tagMisses");
    if (const auto *reuse = dynamic_cast<const ReuseCache *>(&cmp.llc()))
        res.fracNeverEnteredData = reuse->fractionNeverEnteredData();
    res.dramReads = cmp.memory().totalReads();
    return res;
}

} // namespace

RunResult
runMix(const SystemConfig &sys, const Mix &mix, const RunOptions &opt,
       GenerationTracker *tracker, Cycle *win_start, Cycle *win_end)
{
    SystemConfig cfg = sys;
    cfg.seed = opt.seed;
    Cmp cmp(cfg, buildMixStreams(mix, opt.seed, opt.scale));
    if (tracker)
        cmp.llc().setObserver(tracker);
    cmp.run(opt.warmup);
    cmp.beginMeasurement();
    if (win_start)
        *win_start = cmp.now();
    cmp.run(opt.measure);
    if (win_end)
        *win_end = cmp.now();
    const RunResult res = collect(cmp);
    if (tracker) {
        // Cooldown: liveness is future knowledge ("will this line be
        // hit again?"), so keep simulating past the reported window;
        // otherwise every line looks dead near the window's end.
        cmp.run(opt.measure / 2);
        tracker->finalize(cmp.now());
    }
    return res;
}

RunResult
runParallel(const SystemConfig &sys, const AppProfile &app,
            const RunOptions &opt)
{
    SystemConfig cfg = sys;
    cfg.seed = opt.seed;
    Cmp cmp(cfg, buildParallelStreams(app, cfg.numCores, opt.seed,
                                      opt.scale));
    cmp.run(opt.warmup);
    cmp.beginMeasurement();
    cmp.run(opt.measure);
    return collect(cmp);
}

std::vector<RunResult>
runBaselineOverMixes(const SystemConfig &baseline,
                     const std::vector<Mix> &mixes, const RunOptions &opt)
{
    std::vector<RunResult> results;
    results.reserve(mixes.size());
    for (const Mix &mix : mixes)
        results.push_back(runMix(baseline, mix, opt));
    return results;
}

SpeedupSummary
compareAgainst(const SystemConfig &sys, const std::vector<Mix> &mixes,
               const std::vector<RunResult> &baseline,
               const RunOptions &opt)
{
    RC_ASSERT(mixes.size() == baseline.size(),
              "baseline results do not match the mix list");
    SpeedupSummary s;
    s.perMix.reserve(mixes.size());
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        const RunResult r = runMix(sys, mixes[i], opt);
        const double ratio = baseline[i].aggregateIpc > 0.0
            ? r.aggregateIpc / baseline[i].aggregateIpc
            : 0.0;
        s.perMix.push_back(ratio);
    }
    double sum = 0.0;
    s.min = s.perMix.empty() ? 0.0 : s.perMix.front();
    s.max = s.min;
    for (double v : s.perMix) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = s.perMix.empty() ? 0.0
                              : sum / static_cast<double>(s.perMix.size());
    return s;
}

SpeedupSummary
compareOverMixes(const SystemConfig &sys, const SystemConfig &baseline,
                 const std::vector<Mix> &mixes, const RunOptions &opt)
{
    return compareAgainst(sys, mixes,
                          runBaselineOverMixes(baseline, mixes, opt), opt);
}

void
printHeader(const std::string &artifact, const std::string &claim,
            const RunOptions &opt)
{
    std::printf("== %s ==\n", artifact.c_str());
    std::printf("paper: %s\n", claim.c_str());
    std::printf("settings: %u mixes, scale 1/%u, warmup %llu, "
                "measure %llu cycles, seed %llu\n",
                opt.mixCount, opt.scale,
                static_cast<unsigned long long>(opt.warmup),
                static_cast<unsigned long long>(opt.measure),
                static_cast<unsigned long long>(opt.seed));
    std::fflush(stdout);
}

} // namespace rc::bench
