#include "harness.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "arena/arena_registry.hh"
#include "common/log.hh"
#include "common/task_pool.hh"
#include "reuse/reuse_cache.hh"
#include "sim/fanout.hh"
#include "snapshot/journal.hh"
#include "snapshot/serializer.hh"
#include "telemetry/telemetry.hh"
#include "verify/fault_injector.hh"
#include "verify/integrity.hh"

namespace rc::bench
{

namespace
{

/**
 * Aggregate throughput of every forEachRun batch in this process, for
 * the BENCH_harness.json record written at exit.  cpuSeconds sums the
 * individual run durations (the serial-equivalent time); wallSeconds
 * sums the batch wall clocks, so cpu/wall is the realized speedup.
 */
struct PerfTotals
{
    std::mutex mu;
    std::string bench = "harness";
    std::uint64_t sims = 0;
    double cpuSeconds = 0.0;
    double wallSeconds = 0.0;
    std::uint32_t jobs = 1;
    std::uint64_t runsOk = 0;
    std::uint64_t runsRetried = 0;
    std::uint64_t runsQuarantined = 0;
    std::vector<RunOutcome> outcomes; //!< per-run records, batch order
};

/** Batch-local run index of the calling worker (npos outside a run). */
thread_local std::size_t tlsRunIndex = SIZE_MAX;

/** Attempt number of the calling worker's current run. */
thread_local std::uint32_t tlsAttempt = 0;

/** Watchdog wiring of the calling worker's run (null = no watchdog). */
thread_local std::atomic<std::uint64_t> *tlsHeartbeat = nullptr;
thread_local const std::atomic<bool> *tlsAbortFlag = nullptr;

/** Exit nonzero when quarantined runs remain (parseArgs guard). */
std::atomic<bool> exitOnQuarantineFlag{true};

/**
 * forEachRun call counter: a bench executes the same batch sequence on
 * every launch, so the pair (batch, run) names a run stably across
 * relaunches and the journal of a killed sweep maps onto the relaunch.
 */
std::atomic<std::uint64_t> sweepBatchCounter{0};

/** Batch index of the innermost active forEachRun (npos outside). */
std::atomic<std::uint64_t> activeBatch{UINT64_MAX};

/**
 * Per-run watchdog slot.  The worker publishes forward progress into
 * `beat` (wired into Cmp::setProgressCounter); the monitor thread sets
 * `abort` when the beat stalls past the timeout.  `epoch` increments at
 * every attempt start so a retry re-arms the monitor's stall timer.
 */
struct HeartbeatSlot
{
    std::atomic<std::uint64_t> beat{0};
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> running{false};
    std::atomic<bool> abort{false};
};

/** True when @p path names an existing file. */
bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** mkdir that tolerates the directory already existing. */
void
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        throwSimError(SimError::Kind::Snapshot,
                      "cannot create sweep directory '%s'", dir.c_str());
}

/** `<dir>/<stem>-b<batch>-r<run>.<ext>` for the named run. */
std::string
runFilePath(const std::string &dir, const char *stem, std::uint64_t batch,
            std::size_t run, const char *ext)
{
    char buf[96];
    if (run == SIZE_MAX)
        std::snprintf(buf, sizeof(buf), "/%s-solo.%s", stem, ext);
    else
        std::snprintf(buf, sizeof(buf), "/%s-b%llu-r%zu.%s", stem,
                      static_cast<unsigned long long>(batch), run, ext);
    return dir + buf;
}

// String escaping for the perf record comes from the shared JSON
// helper in common/stats.hh (rc::jsonEscape).

PerfTotals &
perfTotals()
{
    static PerfTotals t;
    return t;
}

std::string
perfRecordJsonLocked(const PerfTotals &t)
{
    const double serial =
        t.cpuSeconds > 0.0 ? static_cast<double>(t.sims) / t.cpuSeconds
                           : 0.0;
    const double parallel =
        t.wallSeconds > 0.0 ? static_cast<double>(t.sims) / t.wallSeconds
                            : 0.0;
    const double speedup =
        t.wallSeconds > 0.0 ? t.cpuSeconds / t.wallSeconds : 0.0;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"%s\",\n"
                  "  \"jobs\": %u,\n"
                  "  \"sims\": %llu,\n"
                  "  \"cpu_seconds\": %.3f,\n"
                  "  \"wall_seconds\": %.3f,\n"
                  "  \"serial_sims_per_sec\": %.4f,\n"
                  "  \"parallel_sims_per_sec\": %.4f,\n"
                  "  \"speedup\": %.3f,\n"
                  "  \"runs_ok\": %llu,\n"
                  "  \"runs_retried\": %llu,\n"
                  "  \"runs_quarantined\": %llu,\n"
                  "  \"runs\": [",
                  t.bench.c_str(), t.jobs,
                  static_cast<unsigned long long>(t.sims), t.cpuSeconds,
                  t.wallSeconds, serial, parallel, speedup,
                  static_cast<unsigned long long>(t.runsOk),
                  static_cast<unsigned long long>(t.runsRetried),
                  static_cast<unsigned long long>(t.runsQuarantined));
    std::string out = buf;
    for (std::size_t i = 0; i < t.outcomes.size(); ++i) {
        const RunOutcome &o = t.outcomes[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"index\": %zu, \"status\": \"%s\", "
                      "\"attempts\": %u, \"wall_seconds\": %.3f",
                      i == 0 ? "" : ",", o.index, toString(o.status),
                      o.attempts, o.wallSeconds);
        out += buf;
        if (!o.error.empty())
            out += ", \"error\": \"" + jsonEscape(o.error) + "\"";
        out += "}";
    }
    out += t.outcomes.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

void
writePerfRecord()
{
    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    if (t.sims == 0)
        return;
    std::FILE *f = std::fopen("BENCH_harness.json", "w");
    if (!f) {
        warn("cannot write BENCH_harness.json");
        return;
    }
    const std::string json = perfRecordJsonLocked(t);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

void
registerPerfRecord()
{
    static std::once_flag once;
    std::call_once(once, [] {
        // Construct the totals BEFORE registering the handler: function
        // statics are destroyed in reverse construction order, so this
        // guarantees writePerfRecord runs while they are still alive.
        perfTotals();
        std::atexit(writePerfRecord);
    });
}

/**
 * Exit-code guard: a sweep with runs still quarantined must not look
 * successful to scripts.  Runs after writePerfRecord (atexit is LIFO
 * and parseArgs registers this guard first), so the JSON is on disk
 * before _Exit.
 */
void
quarantineExitGuard()
{
    if (!exitOnQuarantineFlag.load(std::memory_order_relaxed))
        return;
    const std::uint64_t q = quarantinedRunsTotal();
    if (q == 0)
        return;
    std::fprintf(stderr,
                 "harness: %llu run(s) stayed quarantined; exiting "
                 "nonzero\n", static_cast<unsigned long long>(q));
    std::fflush(stderr);
    std::_Exit(1);
}

void
registerQuarantineGuard()
{
    static std::once_flag once;
    std::call_once(once, [] {
        perfTotals(); // keep alive for the guard (see registerPerfRecord)
        std::atexit(quarantineExitGuard);
    });
}

} // namespace

const char *
toString(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok: return "ok";
      case RunStatus::Retried: return "retried";
      case RunStatus::Quarantined: return "quarantined";
    }
    return "unknown";
}

std::size_t
currentRunIndex()
{
    return tlsRunIndex;
}

std::uint32_t
currentAttempt()
{
    return tlsAttempt;
}

std::atomic<std::uint64_t> *
currentRunHeartbeat()
{
    return tlsHeartbeat;
}

const std::atomic<bool> *
currentRunAbortFlag()
{
    return tlsAbortFlag;
}

ScopedRunWatch::ScopedRunWatch(const std::atomic<bool> *abort,
                               std::atomic<std::uint64_t> *heartbeat)
    : prevAbort(tlsAbortFlag), prevHeartbeat(tlsHeartbeat)
{
    tlsAbortFlag = abort;
    tlsHeartbeat = heartbeat;
}

ScopedRunWatch::~ScopedRunWatch()
{
    tlsAbortFlag = prevAbort;
    tlsHeartbeat = prevHeartbeat;
}

std::uint64_t
currentBatchIndex()
{
    return activeBatch.load(std::memory_order_relaxed);
}

void
pruneHangDumps(const std::string &dir, std::size_t keep)
{
    if (keep == 0 || dir.empty())
        return;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    // (mtime, name) so same-second dumps still order deterministically.
    std::vector<std::pair<std::pair<std::int64_t, std::string>,
                          std::string>> dumps;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.rfind("hang-", 0) != 0 || name.size() < 5 + 5 ||
            name.substr(name.size() - 5) != ".dump")
            continue;
        const std::string path = dir + "/" + name;
        struct stat st;
        if (::stat(path.c_str(), &st) != 0)
            continue;
        dumps.push_back({{static_cast<std::int64_t>(st.st_mtime), name},
                         path});
    }
    ::closedir(d);
    if (dumps.size() <= keep)
        return;
    std::sort(dumps.begin(), dumps.end());
    for (std::size_t i = 0; i + keep < dumps.size(); ++i)
        ::unlink(dumps[i].second.c_str());
}

void
resetSweepBatchesForTest()
{
    sweepBatchCounter.store(0, std::memory_order_relaxed);
}

std::uint64_t
quarantinedRunsTotal()
{
    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.runsQuarantined;
}

void
setExitOnQuarantine(bool enable)
{
    exitOnQuarantineFlag.store(enable, std::memory_order_relaxed);
}

std::string
perfRecordJson()
{
    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    return perfRecordJsonLocked(t);
}

const char *
usageString()
{
    return "usage: <bench> [flags]\n"
           "  --mixes=N    multiprogrammed workloads per experiment "
           "(default 5)\n"
           "  --scale=N    capacity divisor, 1 = paper-size caches "
           "(default 8)\n"
           "  --warmup=N   warmup cycles (default 3000000)\n"
           "  --measure=N  measured cycles (default 12000000)\n"
           "  --seed=N     base RNG seed (default 42)\n"
           "  --policy=NAME  restrict/override the replacement policy "
           "under test\n"
           "               (see arena registry; misspellings get a 'did "
           "you mean' hint)\n"
           "  --jobs=N     concurrent simulations (default: hardware "
           "threads; 1 = serial)\n"
           "  --check-interval=N  walk the integrity checker every N "
           "references (0 = off)\n"
           "  --inject=CLASS[@IDX]  poison run IDX (default 0) of each "
           "batch with one CLASS fault\n"
           "               (tag-state, dir-drop, dir-ghost, owner, "
           "orphan-data, mshr-leak, repl-meta)\n"
           "  --checkpoint-interval=N  checkpoint each run's full state "
           "every N references\n"
           "               (needs --sweep-dir or --resume; 0 = off)\n"
           "  --sweep-dir=DIR  journal completed runs and keep results/"
           "checkpoints in DIR\n"
           "  --resume=DIR relaunch a killed sweep from DIR: skip "
           "journaled runs, restore\n"
           "               in-flight ones from their latest valid "
           "checkpoint\n"
           "  --hang-timeout=S  abort and quarantine runs making no "
           "forward progress for\n"
           "               S wall seconds (default 300; 0 = off)\n"
           "  --telemetry-dir=DIR  write per-run telemetry artifacts "
           "(traces, epoch CSVs,\n"
           "               stats JSON) under DIR\n"
           "  --trace-events  record event traces as Chrome trace_event "
           "JSON\n"
           "               (needs --telemetry-dir)\n"
           "  --sample-interval=N  sample stat deltas every N simulated "
           "cycles into an\n"
           "               epoch CSV (needs --telemetry-dir)\n"
           "  --feed-cache=DIR  persist/replay fan-out front-end record "
           "streams under DIR\n"
           "               (warm hits skip stream generation and private-"
           "hierarchy simulation)\n"
           "  --no-feed-cache  force the feed cache off (overrides a "
           "bench's default dir)\n"
           "  --full       paper-strength settings (100 mixes, longer "
           "windows)\n"
           "  --help       print this text and exit\n";
}

RunOptions
parseArgs(int argc, char **argv)
{
    if (argc > 0 && argv[0]) {
        const char *base = std::strrchr(argv[0], '/');
        std::lock_guard<std::mutex> lock(perfTotals().mu);
        perfTotals().bench = base ? base + 1 : argv[0];
    }
    // Guard first, JSON writer second: atexit runs LIFO, so the perf
    // record is on disk before the guard can _Exit nonzero.
    registerQuarantineGuard();
    registerPerfRecord();
    RunOptions opt;
    // Bench CLIs default the watchdog on; tests constructing RunOptions
    // directly keep it off (hangTimeout's field default is 0).
    opt.hangTimeout = 300.0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
        };
        if (const char *v = value("--mixes=")) {
            opt.mixCount = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--scale=")) {
            opt.scale = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--warmup=")) {
            opt.warmup = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--measure=")) {
            opt.measure = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--seed=")) {
            opt.seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--policy=")) {
            // Resolves through the arena registry: unknown names fatal
            // with a did-you-mean hint and the full spelling list.
            opt.policyKind = arena::parsePolicyName(v);
            opt.policy = arena::policyInfo(opt.policyKind).name;
        } else if (const char *v = value("--jobs=")) {
            const int jobs = std::atoi(v);
            if (jobs < 1)
                fatal("--jobs must be >= 1 (got '%s'); use --jobs=1 for "
                      "the serial path", v);
            opt.jobs = static_cast<std::uint32_t>(jobs);
        } else if (const char *v = value("--check-interval=")) {
            opt.checkInterval = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--checkpoint-interval=")) {
            opt.checkpointInterval =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--sweep-dir=")) {
            opt.sweepDir = v;
        } else if (const char *v = value("--resume=")) {
            opt.sweepDir = v;
            opt.resume = true;
        } else if (const char *v = value("--hang-timeout=")) {
            opt.hangTimeout = std::atof(v);
        } else if (const char *v = value("--telemetry-dir=")) {
            opt.telemetryDir = v;
        } else if (std::strcmp(arg, "--trace-events") == 0) {
            opt.traceEvents = true;
        } else if (const char *v = value("--sample-interval=")) {
            opt.sampleInterval = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--feed-cache=")) {
            opt.feedCacheDir = v;
            opt.feedCacheDisabled = false;
        } else if (std::strcmp(arg, "--no-feed-cache") == 0) {
            // Spelled as its own flag (not --feed-cache=) so benches
            // that default the cache on (arena_tournament) can be
            // overridden explicitly; last flag wins.
            opt.feedCacheDir.clear();
            opt.feedCacheDisabled = true;
        } else if (const char *v = value("--inject=")) {
            std::string spec = v;
            if (const std::size_t at = spec.find('@');
                at != std::string::npos) {
                opt.injectRun =
                    static_cast<std::size_t>(std::atoll(spec.c_str() +
                                                        at + 1));
                spec.resize(at);
            }
            FaultClass cls = FaultClass::TagStateFlip;
            if (!faultClassFromName(spec, cls))
                fatal("unknown fault class '%s'; known classes: "
                      "tag-state, dir-drop, dir-ghost, owner, "
                      "orphan-data, mshr-leak, repl-meta", spec.c_str());
            opt.injectFault = spec;
        } else if (std::strcmp(arg, "--full") == 0) {
            opt.mixCount = 100;
            opt.warmup = 5'000'000;
            opt.measure = 20'000'000;
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf("%s", usageString());
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s", usageString());
            fatal("unknown flag '%s'", arg);
        }
    }
    if (opt.mixCount == 0 || opt.scale == 0 || opt.measure == 0)
        fatal("mixes, scale and measure must be positive");
    if (opt.resume && opt.sweepDir.empty())
        fatal("--resume needs a directory (--resume=DIR)");
    if (opt.checkpointInterval != 0 && opt.sweepDir.empty())
        fatal("--checkpoint-interval needs --sweep-dir=DIR or "
              "--resume=DIR to know where to put the checkpoints");
    if (opt.hangTimeout < 0.0)
        fatal("--hang-timeout must be >= 0");
    if ((opt.traceEvents || opt.sampleInterval != 0) &&
        opt.telemetryDir.empty())
        fatal("--trace-events and --sample-interval need "
              "--telemetry-dir=DIR to know where to put the artifacts");
    return opt;
}

RunOptions
initBench(int argc, char **argv, const std::string &artifact,
          const std::string &claim,
          const std::function<void(RunOptions &)> &tweak)
{
    RunOptions opt = parseArgs(argc, argv);
    if (tweak)
        tweak(opt);
#ifndef __OPTIMIZE__
    // Numbers from an -O0 build are not comparable to recorded
    // baselines (BENCH_*.json); say so once per bench process.
    warn("this bench binary was built without optimization; "
         "performance figures will not match recorded baselines");
#endif
    printHeader(artifact, claim, opt);
    return opt;
}

std::uint32_t
effectiveJobs(const RunOptions &opt)
{
    return opt.jobs ? opt.jobs
                    : static_cast<std::uint32_t>(
                          TaskPool::defaultConcurrency());
}

std::vector<RunOutcome>
forEachRun(std::size_t n, const RunOptions &opt,
           const std::function<void(std::size_t)> &body,
           const ResultCodec *codec)
{
    if (n == 0)
        return {};
    registerPerfRecord();
    const std::uint64_t batch =
        sweepBatchCounter.fetch_add(1, std::memory_order_relaxed);
    activeBatch.store(batch, std::memory_order_relaxed);
    const std::uint32_t jobs = effectiveJobs(opt);

    using clock = std::chrono::steady_clock;
    std::atomic<std::uint64_t> runNanos{0};
    std::vector<RunOutcome> outcomes(n);
    std::vector<char> skip(n, 0);

    // Resume: journaled ok/retried runs whose result blob verifies are
    // skipped; quarantined and unjournaled runs re-execute (restoring
    // from their checkpoints inside runMix).  Later journal records win
    // so a resume-of-a-resume sees the freshest state.
    std::unique_ptr<SweepJournal> journal;
    if (!opt.sweepDir.empty()) {
        if (opt.resume) {
            for (const JournalRecord &rec : SweepJournal::load(opt.sweepDir)) {
                if (rec.batch != batch || rec.run >= n)
                    continue;
                const std::size_t i = static_cast<std::size_t>(rec.run);
                if (rec.status == "quarantined" || !codec || !codec->load) {
                    skip[i] = 0;
                    continue;
                }
                const std::string rp =
                    runFilePath(opt.sweepDir, "result", batch, i, "bin");
                try {
                    Deserializer d(rp);
                    if (d.payloadCrc() != rec.digest)
                        throwSimError(SimError::Kind::Snapshot,
                                      "result blob '%s' digest 0x%08x does "
                                      "not match the journal's 0x%08x",
                                      rp.c_str(), d.payloadCrc(),
                                      rec.digest);
                    d.beginSection("result");
                    codec->load(i, d);
                    d.endSection("result");
                } catch (const SimError &err) {
                    warn("resume: run %zu of batch %llu: %s -- re-running",
                         i, static_cast<unsigned long long>(batch),
                         err.what());
                    skip[i] = 0;
                    continue;
                }
                RunOutcome &out = outcomes[i];
                out.index = i;
                out.status = rec.status == "retried" ? RunStatus::Retried
                                                     : RunStatus::Ok;
                out.attempts = rec.attempts;
                out.wallSeconds = rec.wallSeconds;
                out.error.clear();
                out.fromJournal = true;
                skip[i] = 1;
            }
        }
        journal = std::make_unique<SweepJournal>(opt.sweepDir);
    }

    // Forward-progress watchdog: one heartbeat slot per run, one
    // monitor thread flagging runs whose beat stalls past the timeout.
    const bool watch = opt.hangTimeout > 0.0;
    std::vector<HeartbeatSlot> slots(watch ? n : 0);
    std::atomic<bool> stopWatch{false};
    std::thread monitor;
    if (watch) {
        monitor = std::thread([&, n] {
            struct Seen
            {
                std::uint64_t epoch = 0;
                std::uint64_t beat = 0;
                clock::time_point since;
                bool armed = false;
            };
            std::vector<Seen> seen(n);
            const auto poll = std::chrono::duration<double>(
                std::clamp(opt.hangTimeout / 4.0, 0.001, 0.25));
            while (!stopWatch.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(poll);
                const auto now = clock::now();
                for (std::size_t i = 0; i < n; ++i) {
                    HeartbeatSlot &slot = slots[i];
                    if (!slot.running.load(std::memory_order_acquire)) {
                        seen[i].armed = false;
                        continue;
                    }
                    Seen &sn = seen[i];
                    const std::uint64_t e =
                        slot.epoch.load(std::memory_order_relaxed);
                    const std::uint64_t b =
                        slot.beat.load(std::memory_order_relaxed);
                    if (!sn.armed || e != sn.epoch || b != sn.beat) {
                        sn = {e, b, now, true};
                        continue;
                    }
                    if (slot.abort.load(std::memory_order_relaxed))
                        continue;
                    const double stalled =
                        std::chrono::duration<double>(now - sn.since)
                            .count();
                    if (stalled >= opt.hangTimeout) {
                        warn("watchdog: run %zu made no forward progress "
                             "for %.1f s -- aborting it", i, stalled);
                        slot.abort.store(true, std::memory_order_release);
                    }
                }
            }
        });
    }

    // Crash isolation: a SimError fails only this run — retry once,
    // then quarantine.  Anything else still propagates (a logic bug in
    // the harness must not be silently absorbed).
    auto guarded = [&](std::size_t i) {
        if (skip[i])
            return;
        RunOutcome &out = outcomes[i];
        out.index = i;
        tlsRunIndex = i;
        HeartbeatSlot *slot = watch ? &slots[i] : nullptr;
        if (slot) {
            // livelockRun (test hook): run normally, but never publish
            // the heartbeat, so the monitor must flag this run.
            tlsHeartbeat = i == opt.livelockRun ? nullptr : &slot->beat;
            tlsAbortFlag = &slot->abort;
        }
        const auto t0 = clock::now();
        for (std::uint32_t attempt = 0;; ++attempt) {
            tlsAttempt = attempt;
            out.attempts = attempt + 1;
            if (slot) {
                slot->abort.store(false, std::memory_order_relaxed);
                slot->beat.store(0, std::memory_order_relaxed);
                slot->epoch.fetch_add(1, std::memory_order_relaxed);
                slot->running.store(true, std::memory_order_release);
            }
            try {
                body(i);
                if (slot)
                    slot->running.store(false, std::memory_order_release);
                out.status =
                    attempt == 0 ? RunStatus::Ok : RunStatus::Retried;
                out.error.clear();
                break;
            } catch (const SimError &err) {
                if (slot)
                    slot->running.store(false, std::memory_order_release);
                out.error = err.what();
                warn("run %zu attempt %u failed: %s%s", i, attempt + 1,
                     err.what(),
                     attempt == 0 ? " -- retrying" : " -- quarantined");
                if (attempt == 1) {
                    out.status = RunStatus::Quarantined;
                    break;
                }
            }
        }
        tlsRunIndex = SIZE_MAX;
        tlsAttempt = 0;
        tlsHeartbeat = nullptr;
        tlsAbortFlag = nullptr;
        out.wallSeconds =
            std::chrono::duration<double>(clock::now() - t0).count();
        runNanos.fetch_add(
            static_cast<std::uint64_t>(out.wallSeconds * 1e9),
            std::memory_order_relaxed);

        if (!journal)
            return;
        // Persist the result (when a codec exists) and journal the run.
        std::uint32_t digest = 0;
        if (out.status != RunStatus::Quarantined && codec && codec->save) {
            try {
                Serializer s;
                s.beginSection("result");
                codec->save(i, s);
                s.endSection("result");
                s.writeFile(
                    runFilePath(opt.sweepDir, "result", batch, i, "bin"));
                digest = s.payloadCrc();
            } catch (const SimError &err) {
                warn("cannot persist the result of run %zu: %s", i,
                     err.what());
            }
        }
        JournalRecord rec;
        rec.batch = batch;
        rec.run = i;
        rec.status = toString(out.status);
        rec.attempts = out.attempts;
        rec.digest = digest;
        rec.wallSeconds = out.wallSeconds;
        rec.error = out.error;
        journal->append(rec);
    };

    const auto wall0 = clock::now();
    try {
        if (jobs <= 1 || n == 1) {
            for (std::size_t i = 0; i < n; ++i)
                guarded(i);
        } else {
            TaskPool pool(std::min<std::size_t>(jobs, n));
            pool.parallelFor(0, n, guarded);
        }
    } catch (...) {
        stopWatch.store(true, std::memory_order_relaxed);
        if (monitor.joinable())
            monitor.join();
        activeBatch.store(UINT64_MAX, std::memory_order_relaxed);
        throw;
    }
    stopWatch.store(true, std::memory_order_relaxed);
    if (monitor.joinable())
        monitor.join();
    activeBatch.store(UINT64_MAX, std::memory_order_relaxed);
    const double wall =
        std::chrono::duration<double>(clock::now() - wall0).count();

    std::size_t executed = 0;
    for (std::size_t i = 0; i < n; ++i)
        executed += skip[i] ? 0 : 1;

    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    t.sims += executed;
    t.cpuSeconds += static_cast<double>(runNanos.load()) * 1e-9;
    t.wallSeconds += wall;
    t.jobs = jobs;
    for (const RunOutcome &o : outcomes) {
        switch (o.status) {
          case RunStatus::Ok: ++t.runsOk; break;
          case RunStatus::Retried: ++t.runsRetried; break;
          case RunStatus::Quarantined: ++t.runsQuarantined; break;
        }
        t.outcomes.push_back(o);
    }
    return outcomes;
}

double
speedupRatio(double sys_ipc, double baseline_ipc)
{
    return baseline_ipc > 0.0 ? sys_ipc / baseline_ipc : 0.0;
}

SystemConfig
baselineFor(const RunOptions &opt)
{
    SystemConfig sys = baselineSystem(opt.scale);
    if (!opt.policy.empty())
        sys.conv.repl = opt.policyKind;
    return sys;
}

namespace
{

RunResult
collect(Cmp &cmp)
{
    RunResult res;
    res.aggregateIpc = cmp.aggregateIpc();
    for (CoreId c = 0; c < cmp.numCores(); ++c) {
        res.coreIpc.push_back(cmp.ipc(c));
        res.mpki.push_back(cmp.measuredMpki(c));
    }
    const StatSet &llc = cmp.llc().stats();
    res.llcAccesses = llc.ref("accesses");
    if (const Counter *tagMisses = llc.tryRef("tagMisses"))
        res.llcMemFetches = *tagMisses;
    if (const auto *reuse = dynamic_cast<const ReuseCache *>(&cmp.llc()))
        res.fracNeverEnteredData = reuse->fractionNeverEnteredData();
    res.dramReads = cmp.memory().totalReads();
    return res;
}

/** Is the calling thread's run the --inject target, this attempt? */
bool
isInjectTarget(const RunOptions &opt)
{
    return !opt.injectFault.empty() &&
           currentRunIndex() == opt.injectRun &&
           (opt.injectOnRetry || currentAttempt() == 0);
}

/**
 * Cadence for the integrity checker: the explicit --check-interval, or
 * a default one on a poisoned run so the injected fault is actually
 * caught mid-run rather than only at quiesce.
 */
std::uint64_t
checkCadence(const RunOptions &opt)
{
    if (opt.checkInterval != 0)
        return opt.checkInterval;
    return isInjectTarget(opt) ? 5'000 : 0;
}

void
applyInjectedFault(Cmp &cmp, const RunOptions &opt)
{
    FaultClass cls = FaultClass::TagStateFlip;
    if (!faultClassFromName(opt.injectFault, cls))
        throwSimError(SimError::Kind::Config,
                      "unknown fault class '%s'",
                      opt.injectFault.c_str());
    // Per-run seed: deterministic, but distinct targets across runs.
    FaultInjector injector(opt.seed + currentRunIndex());
    const InjectionResult r = injector.inject(cmp, cls);
    warn("run %zu attempt %u: inject %s: %s", currentRunIndex(),
         currentAttempt() + 1, toString(cls), r.detail.c_str());
}

/**
 * File tag of the calling worker's run, matching runFilePath(): the
 * telemetry artifacts sit next to the checkpoints under the same
 * naming scheme so a sweep's outputs line up run for run.
 */
std::string
telemetryTag()
{
    if (currentRunIndex() == SIZE_MAX) {
        // Benches call runMix outside forEachRun repeatedly (one call
        // per configuration); number those so artifacts never silently
        // overwrite each other.
        static std::atomic<std::uint64_t> soloRuns{0};
        const std::uint64_t n = soloRuns.fetch_add(1);
        return n == 0 ? "solo" : "solo" + std::to_string(n + 1);
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "b%llu-r%zu",
                  static_cast<unsigned long long>(currentBatchIndex()),
                  currentRunIndex());
    return buf;
}

/**
 * Persist one run's resumable state: a "harness" section carrying the
 * phase (0 = warmup, 1 = measurement) and a fingerprint of the options
 * that shape determinism, then the full Cmp image, then the epoch
 * sampler's accumulated rows and baselines (absent when sampling is
 * off; the sampleInterval fingerprint keeps the two in agreement).
 * Checkpoints and watchdog hang dumps share this layout.
 */
void
writeRunState(const Cmp &cmp, std::uint32_t phase, const RunOptions &opt,
              const EpochSampler *sampler, const std::string &path)
{
    Serializer s;
    s.beginSection("run");
    s.beginSection("harness");
    s.putU32(phase);
    s.putU64(opt.seed);
    s.putU64(opt.warmup);
    s.putU64(opt.measure);
    s.putU64(opt.scale);
    s.putU64(opt.sampleInterval);
    s.endSection("harness");
    s.beginSection("cmp");
    cmp.save(s);
    s.endSection("cmp");
    s.beginSection("telemetry");
    s.putBool(sampler != nullptr);
    if (sampler)
        sampler->save(s);
    s.endSection("telemetry");
    s.endSection("run");
    s.writeFile(path);
}

/**
 * One simulation run with the full robustness kit: optional resume from
 * a checkpoint, periodic checkpointing, watchdog wiring, integrity
 * cadence, fault injection and the tracker cooldown.  runMix and
 * runParallel differ only in how the Cmp is built.
 */
RunResult
executeRun(const SystemConfig &cfg,
           const std::function<std::unique_ptr<Cmp>()> &make_cmp,
           const RunOptions &opt, GenerationTracker *tracker,
           Cycle *win_start, Cycle *win_end)
{
    std::unique_ptr<Cmp> sim = make_cmp();

    // Quarantine-retry hygiene: a tracker that stayed attached across a
    // failed attempt holds that attempt's history; start it clean so a
    // retry is bit-identical to a clean first attempt.
    if (tracker)
        tracker->reset();

    const bool wantCheckpoints =
        opt.checkpointInterval != 0 && !opt.sweepDir.empty();
    if (wantCheckpoints && tracker)
        warn("run %zu: checkpointing disabled, a generation tracker is "
             "attached (observer history is not simulated state)",
             currentRunIndex());
    std::string ckptPath;
    if (wantCheckpoints && !tracker) {
        ensureDir(opt.sweepDir);
        ckptPath = runFilePath(opt.sweepDir, "ckpt", currentBatchIndex(),
                               currentRunIndex(), "ckpt");
    }

    // The telemetry session precedes the restore attempt: a resumed run
    // must restore its sampler baselines from the checkpoint before the
    // sample hook is installed.
    TelemetryConfig tcfg;
    tcfg.dir = opt.telemetryDir;
    tcfg.traceEvents = opt.traceEvents;
    tcfg.sampleInterval = opt.sampleInterval;
    std::unique_ptr<TelemetrySession> telemetry;
    const std::string ttag = tcfg.enabled() ? telemetryTag() : "";
    if (tcfg.enabled())
        telemetry = std::make_unique<TelemetrySession>(tcfg, ttag);
    EventTracer *tracer = telemetry ? telemetry->tracer() : nullptr;
    EpochSampler *sampler = telemetry ? telemetry->sampler() : nullptr;
    if (tracer)
        tracer->recordHost("run.attempt", 0, 0, currentAttempt() + 1);

    // Resume: restore from the run's checkpoint when one exists; any
    // snapshot error falls back to a from-scratch execution.
    std::uint32_t phase = 0; // 0 = warmup, 1 = measurement
    if (opt.resume && !ckptPath.empty() && fileExists(ckptPath)) {
        try {
            Deserializer d(ckptPath);
            d.beginSection("run");
            d.beginSection("harness");
            const std::uint32_t savedPhase = d.getU32();
            const std::uint64_t seed = d.getU64();
            const std::uint64_t warmup = d.getU64();
            const std::uint64_t measure = d.getU64();
            const std::uint64_t scale = d.getU64();
            const std::uint64_t sampleEvery = d.getU64();
            if (savedPhase > 1)
                throwSimError(SimError::Kind::Snapshot,
                              "checkpoint '%s' carries unknown phase %u",
                              ckptPath.c_str(), savedPhase);
            if (seed != opt.seed || warmup != opt.warmup ||
                measure != opt.measure || scale != opt.scale ||
                sampleEvery != opt.sampleInterval)
                throwSimError(SimError::Kind::Snapshot,
                              "checkpoint '%s' was taken under different "
                              "run options (seed %llu warmup %llu measure "
                              "%llu scale %llu sample-interval %llu)",
                              ckptPath.c_str(),
                              static_cast<unsigned long long>(seed),
                              static_cast<unsigned long long>(warmup),
                              static_cast<unsigned long long>(measure),
                              static_cast<unsigned long long>(scale),
                              static_cast<unsigned long long>(sampleEvery));
            d.endSection("harness");
            d.beginSection("cmp");
            sim->restore(d);
            d.endSection("cmp");
            d.beginSection("telemetry");
            const bool hasSampler = d.getBool();
            if (hasSampler != (sampler != nullptr))
                throwSimError(SimError::Kind::Snapshot,
                              "checkpoint '%s' and this run disagree on "
                              "epoch sampling", ckptPath.c_str());
            if (sampler)
                sampler->restore(d);
            d.endSection("telemetry");
            d.endSection("run");
            // A checkpoint that restores into an inconsistent system is
            // as unusable as one that fails its CRC.
            IntegrityChecker(*sim).enforce(sim->now());
            phase = savedPhase;
            warn("run %zu: resumed from '%s' (phase %u, %llu references "
                 "already simulated)", currentRunIndex(), ckptPath.c_str(),
                 phase,
                 static_cast<unsigned long long>(
                     sim->referencesProcessed()));
        } catch (const SimError &err) {
            warn("run %zu: checkpoint '%s' unusable: %s -- restarting "
                 "the run from scratch", currentRunIndex(),
                 ckptPath.c_str(), err.what());
            sim = make_cmp();
            phase = 0;
            if (telemetry) {
                // A failed restore may have half-filled the sampler;
                // rebuild the session so the run starts pristine.
                telemetry.reset();
                telemetry = std::make_unique<TelemetrySession>(tcfg, ttag);
                tracer = telemetry->tracer();
                sampler = telemetry->sampler();
                if (tracer)
                    tracer->recordHost("run.attempt", 0, 0,
                                       currentAttempt() + 1);
            }
        }
    }

    Cmp &cmp = *sim;
    if (telemetry)
        telemetry->attach(cmp);
    if (tracker)
        cmp.llc().setObserver(tracker);
    IntegrityChecker checker(cmp);
    const std::uint64_t cadence = checkCadence(opt);
    if (cadence != 0)
        cmp.setCheckHook(cadence, [&checker](const Cmp &, Cycle now) {
            checker.enforce(now);
        });

    // Watchdog wiring: publish forward progress, honor the abort flag,
    // and leave a diagnostic state dump behind when aborted.
    if (const std::atomic<bool> *abort_flag = currentRunAbortFlag()) {
        cmp.setProgressCounter(currentRunHeartbeat());
        std::string dumpPath;
        if (!opt.sweepDir.empty()) {
            ensureDir(opt.sweepDir);
            dumpPath = runFilePath(opt.sweepDir, "hang",
                                   currentBatchIndex(), currentRunIndex(),
                                   "dump");
        }
        cmp.setAbortFlag(abort_flag,
                         [&opt, &phase, sampler, dumpPath](const Cmp &c) {
            if (dumpPath.empty())
                return;
            try {
                writeRunState(c, phase, opt, sampler, dumpPath);
                warn("watchdog: diagnostic state dump written to '%s'",
                     dumpPath.c_str());
                // A sweep that keeps tripping its watchdog across
                // relaunches must not fill the disk with diagnostics.
                pruneHangDumps(opt.sweepDir, opt.hangDumpKeep);
            } catch (const SimError &err) {
                warn("watchdog: cannot write the state dump: %s",
                     err.what());
            }
        });
    }

    // Periodic checkpoints, plus the simulated-crash test hook (which
    // dies right after a checkpoint landed, like a kill -9 would).
    if (!ckptPath.empty())
        cmp.setSnapshotHook(opt.checkpointInterval,
                            [&opt, &phase, sampler, tracer,
                             ckptPath](const Cmp &c, Cycle) {
            const std::uint64_t t0 = tracer ? tracer->hostNowMicros() : 0;
            writeRunState(c, phase, opt, sampler, ckptPath);
            if (tracer)
                tracer->recordHost("checkpoint.write", 0,
                                   tracer->hostNowMicros() - t0);
            if (opt.crashAfterRefs != 0 &&
                c.referencesProcessed() >= opt.crashAfterRefs)
                throwSimError(SimError::Kind::Snapshot,
                              "simulated crash after %llu references "
                              "(test hook)",
                              static_cast<unsigned long long>(
                                  c.referencesProcessed()));
        });

    if (phase == 0) {
        const std::uint64_t warm0 = tracer ? tracer->hostNowMicros() : 0;
        cmp.run(opt.warmup);
        if (tracer)
            tracer->recordHost("run.warmup", 0,
                               tracer->hostNowMicros() - warm0);
        if (isInjectTarget(opt))
            applyInjectedFault(cmp, opt);
        cmp.beginMeasurement();
        phase = 1;
        if (win_start)
            *win_start = cmp.now();
        const std::uint64_t meas0 = tracer ? tracer->hostNowMicros() : 0;
        cmp.run(opt.measure);
        if (tracer)
            tracer->recordHost("run.measure", 0,
                               tracer->hostNowMicros() - meas0);
    } else {
        // Mid-measurement restore: warmup, injection and the counter
        // snapshots already happened before the checkpoint; re-running
        // run(measure) continues to the identical horizon because the
        // loop end is computed from the restored pre-measurement
        // horizon.
        if (win_start)
            *win_start = cmp.measurementStart();
        const std::uint64_t meas0 = tracer ? tracer->hostNowMicros() : 0;
        cmp.run(opt.measure);
        if (tracer)
            tracer->recordHost("run.measure", 0,
                               tracer->hostNowMicros() - meas0);
    }
    if (win_end)
        *win_end = cmp.now();
    const RunResult res = collect(cmp);
    if (tracker) {
        // Cooldown: liveness is future knowledge ("will this line be
        // hit again?"), so keep simulating past the reported window;
        // otherwise every line looks dead near the window's end.
        cmp.run(opt.measure / 2);
        tracker->finalize(cmp.now());
        if (sampler) {
            // Emit the residual epoch now (finalize()'s own finish() is
            // then a no-op) so the cooldown row gets a live fraction.
            sampler->finish(cmp, cmp.now());
            sampler->attachLiveFractions(tracker->records(),
                                         cmp.llc().dataLinesTotal());
        }
    }
    if (telemetry)
        telemetry->finalize(cmp, cmp.now());
    if (cadence != 0)
        checker.enforceQuiesce(cmp.now());
    if (!ckptPath.empty())
        std::remove(ckptPath.c_str());
    (void)cfg;
    return res;
}

/**
 * One fan-out job: simulate @p mix on every config through one shared
 * front end.  Telemetry, integrity checking and watchdog wiring are
 * installed per member, so each back end's artifacts and checks match
 * an independent run's.  The heavier robustness kit (checkpoint files,
 * resume, fault injection) is handled by the caller falling back to
 * independent executeRun jobs — see runConfigsOverMixes().
 */
std::vector<RunResult>
executeFanout(const std::vector<SystemConfig> &sys_cfgs, const Mix &mix,
              const RunOptions &opt)
{
    std::vector<SystemConfig> cfgs = sys_cfgs;
    for (SystemConfig &c : cfgs)
        c.seed = opt.seed;

    // Feed-cache protocol (--feed-cache=DIR): the front end's record
    // streams depend only on (front-end prefix, mix, seed, scale,
    // windows), which every member shares, so one lookup covers the
    // whole job.  Warm hit: replay zero-copy from the blob.  Miss:
    // take the key's flock lease so concurrent processes racing the
    // same cold key serialize (the loser wakes to a warm re-lookup),
    // capture the front end while simulating, and store it after the
    // run.  Either way the results are bit-identical to an uncached
    // pass; any cache failure demotes to exactly that.
    std::shared_ptr<FeedCache> fc;
    if (!opt.feedCacheDir.empty()) {
        try {
            fc = FeedCache::open(opt.feedCacheDir);
        } catch (const SimError &e) {
            warn("feed cache disabled for this run: %s", e.what());
        }
    }
    FeedKey key;
    std::shared_ptr<const FeedBlob> blob;
    std::unique_ptr<FeedKeyLease> lease;
    if (fc) {
        key = feedKeyOf(cfgs.front(), mix, opt.seed, opt.scale,
                        opt.warmup, opt.measure);
        blob = fc->lookup(key);
        if (!blob) {
            lease = fc->lockKey(key.digest);
            if (lease)
                blob = fc->lookup(key); // did the lease holder store it?
        }
    }
    const bool capture = fc != nullptr && blob == nullptr;

    FanoutCmp fan(cfgs,
                  [&mix, &opt] {
                      return buildMixStreams(mix, opt.seed, opt.scale);
                  },
                  blob, capture);
    const std::size_t n = fan.size();

    // Per-member telemetry: one session per back end, tagged
    // <runtag>-m<member> so a fan-out sweep's artifacts line up with
    // the member order.
    TelemetryConfig tcfg;
    tcfg.dir = opt.telemetryDir;
    tcfg.traceEvents = opt.traceEvents;
    tcfg.sampleInterval = opt.sampleInterval;
    std::vector<std::unique_ptr<TelemetrySession>> telemetry;
    if (tcfg.enabled()) {
        const std::string base = telemetryTag();
        for (std::size_t j = 0; j < n; ++j) {
            telemetry.push_back(std::make_unique<TelemetrySession>(
                tcfg, base + "-m" + std::to_string(j)));
            telemetry.back()->attach(fan.member(j));
            if (EventTracer *tracer = telemetry.back()->tracer())
                tracer->recordHost("run.attempt", 0, 0,
                                   currentAttempt() + 1);
        }
    }

    // Per-member integrity cadence (fan-out never injects faults, so
    // only the explicit --check-interval applies).
    std::vector<std::unique_ptr<IntegrityChecker>> checkers;
    if (opt.checkInterval != 0) {
        for (std::size_t j = 0; j < n; ++j) {
            checkers.push_back(
                std::make_unique<IntegrityChecker>(fan.member(j)));
            IntegrityChecker *ck = checkers.back().get();
            fan.member(j).setCheckHook(
                opt.checkInterval,
                [ck](const Cmp &, Cycle now) { ck->enforce(now); });
        }
    }

    // Watchdog wiring: every member publishes into the run's shared
    // heartbeat (members advance in lockstep on one thread, so any
    // member's progress is the job's progress) and honors the abort.
    if (const std::atomic<bool> *abort_flag = currentRunAbortFlag()) {
        for (std::size_t j = 0; j < n; ++j) {
            fan.member(j).setProgressCounter(currentRunHeartbeat());
            fan.member(j).setAbortFlag(abort_flag);
        }
    }

    fan.run(opt.warmup);
    fan.beginMeasurement();
    fan.run(opt.measure);

    std::vector<RunResult> res;
    res.reserve(n);
    for (std::size_t j = 0; j < n; ++j)
        res.push_back(collect(fan.member(j)));
    for (std::size_t j = 0; j < telemetry.size(); ++j)
        telemetry[j]->finalize(fan.member(j), fan.member(j).now());
    for (std::size_t j = 0; j < checkers.size(); ++j)
        checkers[j]->enforceQuiesce(fan.member(j).now());

    if (capture) {
        // Persist after the results are in hand: a store failure (disk
        // full, torn directory) costs the next run its warm hit, never
        // this run its answer.
        try {
            fc->store(key, fan.sharedFeed());
        } catch (const SimError &e) {
            warn("feed cache store failed (run unaffected): %s",
                 e.what());
        }
    }
    return res;
}

} // namespace

RunResult
runMix(const SystemConfig &sys, const Mix &mix, const RunOptions &opt,
       GenerationTracker *tracker, Cycle *win_start, Cycle *win_end)
{
    SystemConfig cfg = sys;
    cfg.seed = opt.seed;
    return executeRun(cfg,
                      [&] {
                          return std::make_unique<Cmp>(
                              cfg, buildMixStreams(mix, opt.seed,
                                                   opt.scale));
                      },
                      opt, tracker, win_start, win_end);
}

RunResult
runParallel(const SystemConfig &sys, const AppProfile &app,
            const RunOptions &opt)
{
    SystemConfig cfg = sys;
    cfg.seed = opt.seed;
    return executeRun(cfg,
                      [&] {
                          return std::make_unique<Cmp>(
                              cfg, buildParallelStreams(app, cfg.numCores,
                                                        opt.seed,
                                                        opt.scale));
                      },
                      opt, nullptr, nullptr, nullptr);
}

// RunResult's field-level serialization moved to src/sim/run_result.cc
// (rc::saveRunResult / rc::loadRunResult, found here via ADL) when the
// sweep daemon started persisting the same values.

namespace
{

/**
 * In-process memo of finished RunResults keyed by (config, mix,
 * deterministic run options): benches re-running the same baseline for
 * several comparisons reuse the simulated results.  Keys are explicit
 * field enumerations — equal keys imply equal simulations, and a
 * spurious mismatch only costs a re-run, never a wrong reuse.
 */
struct RunMemo
{
    std::mutex mu;
    std::map<std::string, RunResult> map;
};

RunMemo &
runMemo()
{
    static RunMemo m;
    return m;
}

/** Memoization is sound only for plain in-memory sweeps: journaling,
 *  resume and the failure-injection hooks all change what a "result"
 *  means for a given key. */
bool
memoizable(const RunOptions &opt)
{
    return opt.sweepDir.empty() && !opt.resume &&
           opt.injectFault.empty() && opt.crashAfterRefs == 0 &&
           opt.livelockRun == SIZE_MAX;
}

/**
 * The options that shape a run's numbers.  The job count is included
 * deliberately even though results are jobs-invariant: the determinism
 * tests re-run sweeps across job counts to PROVE that invariance, and a
 * memo hit would short-circuit exactly the property under test.
 */
std::string
optMemoKey(const RunOptions &opt)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "seed=%llu;scale=%u;w=%llu;m=%llu;j=%u",
                  static_cast<unsigned long long>(opt.seed), opt.scale,
                  static_cast<unsigned long long>(opt.warmup),
                  static_cast<unsigned long long>(opt.measure),
                  effectiveJobs(opt));
    return buf;
}

/** Every SystemConfig field, including the inactive SLLC sub-configs
 *  (spurious misses are safe; omissions are not). */
std::string
configMemoKey(const SystemConfig &c)
{
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "cores=%u;priv=%llu,%u,%llu,%llu,%u,%llu;"
        "pf=%d,%u,%u,%u,%u;xbar=%u,%llu,%llu,%u;"
        "mem=%u,%u,%u,%llu,%llu,%llu,%llu,%llu;"
        "kind=%u;conv=%llu,%u,%u,%u,%llu,%llu,%llu;"
        "reuse=%llu,%u,%llu,%u,%u,%u,%u,%llu,%llu,%llu;"
        "ncid=%llu,%u,%llu,%u,%llu,%llu,%llu,%.17g;"
        "seed=%llu;cap=%u",
        c.numCores, static_cast<unsigned long long>(c.priv.l1Bytes),
        c.priv.l1Ways, static_cast<unsigned long long>(c.priv.l1Latency),
        static_cast<unsigned long long>(c.priv.l2Bytes), c.priv.l2Ways,
        static_cast<unsigned long long>(c.priv.l2Latency),
        c.prefetch.enable ? 1 : 0, c.prefetch.degree,
        c.prefetch.tableEntries, c.prefetch.regionShift,
        c.prefetch.minConfidence, c.xbar.numBanks,
        static_cast<unsigned long long>(c.xbar.linkLatency),
        static_cast<unsigned long long>(c.xbar.bankOccupancy),
        c.xbar.mshrPerBank, c.memory.numChannels, c.memory.dram.numBanks,
        c.memory.dram.pageBytes,
        static_cast<unsigned long long>(c.memory.dram.rowMissLatency),
        static_cast<unsigned long long>(c.memory.dram.rowHitLatency),
        static_cast<unsigned long long>(c.memory.dram.rowConflictExtra),
        static_cast<unsigned long long>(c.memory.dram.busCyclesPerLine),
        static_cast<unsigned long long>(c.memory.dram.bankOccupancy),
        static_cast<unsigned>(c.llcKind),
        static_cast<unsigned long long>(c.conv.capacityBytes), c.conv.ways,
        static_cast<unsigned>(c.conv.repl), c.conv.numCores,
        static_cast<unsigned long long>(c.conv.tagLatency),
        static_cast<unsigned long long>(c.conv.dataLatency),
        static_cast<unsigned long long>(c.conv.interventionLatency),
        static_cast<unsigned long long>(c.reuse.tagEquivBytes),
        c.reuse.tagWays, static_cast<unsigned long long>(c.reuse.dataBytes),
        c.reuse.dataWays, static_cast<unsigned>(c.reuse.tagRepl),
        static_cast<unsigned>(c.reuse.dataRepl), c.reuse.numCores,
        static_cast<unsigned long long>(c.reuse.tagLatency),
        static_cast<unsigned long long>(c.reuse.dataLatency),
        static_cast<unsigned long long>(c.reuse.interventionLatency),
        static_cast<unsigned long long>(c.ncid.tagEquivBytes),
        c.ncid.tagWays, static_cast<unsigned long long>(c.ncid.dataBytes),
        c.ncid.numCores,
        static_cast<unsigned long long>(c.ncid.tagLatency),
        static_cast<unsigned long long>(c.ncid.dataLatency),
        static_cast<unsigned long long>(c.ncid.interventionLatency),
        c.ncid.selectiveFillRate,
        static_cast<unsigned long long>(c.seed), c.capacityScale);
    return buf;
}

/** Summary statistics over the filled per-mix ratio vector. */
SpeedupSummary
summarize(std::vector<double> per_mix)
{
    SpeedupSummary s;
    s.perMix = std::move(per_mix);
    double sum = 0.0;
    for (std::size_t i = 0; i < s.perMix.size(); ++i) {
        const double v = s.perMix[i];
        sum += v;
        if (i == 0) {
            s.min = s.max = v;
        } else {
            s.min = std::min(s.min, v);
            s.max = std::max(s.max, v);
        }
    }
    s.mean = s.perMix.empty() ? 0.0
                              : sum / static_cast<double>(s.perMix.size());
    return s;
}

} // namespace

std::vector<RunResult>
runMixFanout(const std::vector<SystemConfig> &cfgs, const Mix &mix,
             const RunOptions &opt)
{
    RC_ASSERT(!cfgs.empty(), "runMixFanout needs at least one config");
    return executeFanout(cfgs, mix, opt);
}

std::vector<std::vector<RunResult>>
runConfigsOverMixes(const std::vector<SystemConfig> &cfgs,
                    const std::vector<Mix> &mixes, const RunOptions &opt)
{
    std::vector<std::vector<RunResult>> results(
        cfgs.size(), std::vector<RunResult>(mixes.size()));
    if (cfgs.empty() || mixes.empty())
        return results;

    // Memo lookup: cells simulated earlier in this process (same
    // config, mix and deterministic options) are filled directly and
    // excluded from the job list.
    const bool memo = memoizable(opt);
    std::vector<std::string> cellKeys;
    std::vector<std::vector<char>> have(
        cfgs.size(), std::vector<char>(mixes.size(), 0));
    if (memo) {
        cellKeys.resize(cfgs.size() * mixes.size());
        const std::string optKey = optMemoKey(opt);
        std::vector<std::string> mixKeys(mixes.size());
        for (std::size_t m = 0; m < mixes.size(); ++m)
            mixKeys[m] = mixes[m].label();
        RunMemo &cache = runMemo();
        std::lock_guard<std::mutex> lock(cache.mu);
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            const std::string cfgKey = configMemoKey(cfgs[i]);
            for (std::size_t m = 0; m < mixes.size(); ++m) {
                std::string &key = cellKeys[i * mixes.size() + m];
                key = cfgKey + "|" + mixKeys[m] + "|" + optKey;
                const auto it = cache.map.find(key);
                if (it != cache.map.end()) {
                    results[i][m] = it->second;
                    have[i][m] = 1;
                }
            }
        }
    }

    // Group configs by the front-end-invariant prefix, preserving
    // first-appearance order so job numbering is stable across
    // relaunches of the same bench.
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        bool placed = false;
        for (std::vector<std::size_t> &g : groups) {
            if (FanoutCmp::samePrivatePrefix(cfgs[g.front()], cfgs[i])) {
                g.push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed)
            groups.push_back({i});
    }

    // Fan-out needs the plain execution kit: checkpoint files, resume
    // and fault injection address individual runs, so those sweeps keep
    // one job per (config, mix).  Prefetching state lives in front of
    // the split and disqualifies the group entirely.
    const bool fanoutOk = opt.sweepDir.empty() && !opt.resume &&
                          opt.injectFault.empty() &&
                          opt.crashAfterRefs == 0 &&
                          opt.livelockRun == SIZE_MAX;

    struct Job
    {
        std::vector<std::size_t> members; //!< config indices
        std::size_t mix = 0;
    };
    std::vector<Job> jobs;
    for (const std::vector<std::size_t> &g : groups) {
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            std::vector<std::size_t> need;
            for (std::size_t i : g) {
                if (!have[i][m])
                    need.push_back(i);
            }
            if (need.empty())
                continue;
            // Single-member jobs normally take the plain runMix path
            // (fan-out buys nothing), but with a feed cache attached
            // the fan-out path is where replay lives — route them
            // through it so single-config sweeps (fig06, fig07-style
            // baselines) go SLLC-only on warm keys too.
            const bool wantFanout =
                need.size() >= 2 || !opt.feedCacheDir.empty();
            if (fanoutOk && wantFanout &&
                !cfgs[need.front()].prefetch.enable) {
                jobs.push_back(Job{std::move(need), m});
            } else {
                for (std::size_t i : need)
                    jobs.push_back(Job{{i}, m});
            }
        }
    }
    if (jobs.empty())
        return results;

    ResultCodec codec;
    codec.save = [&](std::size_t j, Serializer &s) {
        const Job &job = jobs[j];
        s.putU64(job.members.size());
        for (std::size_t i : job.members)
            saveRunResult(s, results[i][job.mix]);
    };
    codec.load = [&](std::size_t j, Deserializer &d) {
        const Job &job = jobs[j];
        const std::uint64_t n = d.getU64();
        if (n != job.members.size())
            throwSimError(SimError::Kind::Snapshot,
                          "persisted fan-out job carries %llu results "
                          "for a %zu-member job",
                          static_cast<unsigned long long>(n),
                          job.members.size());
        for (std::size_t i : job.members)
            results[i][job.mix] = loadRunResult(d);
    };

    const std::vector<RunOutcome> outcomes =
        forEachRun(jobs.size(), opt, [&](std::size_t j) {
            const Job &job = jobs[j];
            if (job.members.size() == 1 && opt.feedCacheDir.empty()) {
                results[job.members.front()][job.mix] =
                    runMix(cfgs[job.members.front()], mixes[job.mix], opt);
            } else {
                std::vector<SystemConfig> group;
                group.reserve(job.members.size());
                for (std::size_t i : job.members)
                    group.push_back(cfgs[i]);
                const std::vector<RunResult> r =
                    executeFanout(group, mixes[job.mix], opt);
                for (std::size_t k = 0; k < job.members.size(); ++k)
                    results[job.members[k]][job.mix] = r[k];
            }
        }, &codec);

    if (memo) {
        RunMemo &cache = runMemo();
        std::lock_guard<std::mutex> lock(cache.mu);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            if (outcomes[j].status == RunStatus::Quarantined)
                continue;
            for (std::size_t i : jobs[j].members)
                cache.map[cellKeys[i * mixes.size() + jobs[j].mix]] =
                    results[i][jobs[j].mix];
        }
    }
    return results;
}

std::vector<RunResult>
runBaselineOverMixes(const SystemConfig &baseline,
                     const std::vector<Mix> &mixes, const RunOptions &opt)
{
    std::vector<std::vector<RunResult>> res =
        runConfigsOverMixes({baseline}, mixes, opt);
    return std::move(res.front());
}

void
clearBaselineMemoForTest()
{
    RunMemo &cache = runMemo();
    std::lock_guard<std::mutex> lock(cache.mu);
    cache.map.clear();
}

SpeedupSummary
compareAgainst(const SystemConfig &sys, const std::vector<Mix> &mixes,
               const std::vector<RunResult> &baseline,
               const RunOptions &opt)
{
    RC_ASSERT(mixes.size() == baseline.size(),
              "baseline results do not match the mix list");
    const std::vector<std::vector<RunResult>> res =
        runConfigsOverMixes({sys}, mixes, opt);
    std::vector<double> per_mix(mixes.size(), 0.0);
    for (std::size_t i = 0; i < mixes.size(); ++i)
        per_mix[i] = speedupRatio(res.front()[i].aggregateIpc,
                                  baseline[i].aggregateIpc);
    return summarize(std::move(per_mix));
}

SpeedupSummary
compareOverMixes(const SystemConfig &sys, const SystemConfig &baseline,
                 const std::vector<Mix> &mixes, const RunOptions &opt)
{
    // One pass, two back ends per mix when the systems share a front
    // end; runConfigsOverMixes degrades to the two-batch layout itself
    // when they do not.
    const std::vector<std::vector<RunResult>> res =
        runConfigsOverMixes({baseline, sys}, mixes, opt);
    std::vector<double> per_mix(mixes.size(), 0.0);
    for (std::size_t i = 0; i < mixes.size(); ++i)
        per_mix[i] = speedupRatio(res[1][i].aggregateIpc,
                                  res[0][i].aggregateIpc);
    return summarize(std::move(per_mix));
}

void
printHeader(const std::string &artifact, const std::string &claim,
            const RunOptions &opt)
{
    std::printf("== %s ==\n", artifact.c_str());
    std::printf("paper: %s\n", claim.c_str());
    std::printf("settings: %u mixes, scale 1/%u, warmup %llu, "
                "measure %llu cycles, seed %llu, %u jobs%s%s\n",
                opt.mixCount, opt.scale,
                static_cast<unsigned long long>(opt.warmup),
                static_cast<unsigned long long>(opt.measure),
                static_cast<unsigned long long>(opt.seed),
                effectiveJobs(opt),
                opt.policy.empty() ? "" : ", policy ",
                opt.policy.c_str());
    std::fflush(stdout);
}

::rc::RunResult
simulateRequest(const svc::RunRequest &req, const std::atomic<bool> *abort,
                std::atomic<std::uint64_t> *heartbeat,
                const std::string &feed_cache_dir)
{
    RunOptions opt;
    opt.scale = req.scale;
    opt.warmup = req.warmup;
    opt.measure = req.measure;
    opt.seed = req.seed;
    opt.jobs = 1; // one request = one run; concurrency is the daemon's
    opt.feedCacheDir = feed_cache_dir;
    // Adopt the caller's watchdog (the daemon's per-job abort flag and
    // heartbeat); with both null this is a plain deterministic run —
    // the client's in-process fallback path — and bit-identical.
    ScopedRunWatch watch(abort, heartbeat);
    // With a feed cache, route through a single-member fan-out job so
    // the request's front end can replay from (or populate) the shared
    // blob; runMixFanout is bit-identical to runMix for one member.
    // Prefetching keeps state in front of the classify split and stays
    // on the plain path.
    if (!opt.feedCacheDir.empty() && !req.config.prefetch.enable)
        return runMixFanout({req.config}, req.mix, opt).front();
    return runMix(req.config, req.mix, opt);
}

} // namespace rc::bench
