#include "harness.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/log.hh"
#include "common/task_pool.hh"
#include "reuse/reuse_cache.hh"

namespace rc::bench
{

namespace
{

/**
 * Aggregate throughput of every forEachRun batch in this process, for
 * the BENCH_harness.json record written at exit.  cpuSeconds sums the
 * individual run durations (the serial-equivalent time); wallSeconds
 * sums the batch wall clocks, so cpu/wall is the realized speedup.
 */
struct PerfTotals
{
    std::mutex mu;
    std::string bench = "harness";
    std::uint64_t sims = 0;
    double cpuSeconds = 0.0;
    double wallSeconds = 0.0;
    std::uint32_t jobs = 1;
};

PerfTotals &
perfTotals()
{
    static PerfTotals t;
    return t;
}

void
writePerfRecord()
{
    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    if (t.sims == 0)
        return;
    std::FILE *f = std::fopen("BENCH_harness.json", "w");
    if (!f) {
        warn("cannot write BENCH_harness.json");
        return;
    }
    const double serial =
        t.cpuSeconds > 0.0 ? static_cast<double>(t.sims) / t.cpuSeconds
                           : 0.0;
    const double parallel =
        t.wallSeconds > 0.0 ? static_cast<double>(t.sims) / t.wallSeconds
                            : 0.0;
    const double speedup =
        t.wallSeconds > 0.0 ? t.cpuSeconds / t.wallSeconds : 0.0;
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"jobs\": %u,\n"
                 "  \"sims\": %llu,\n"
                 "  \"cpu_seconds\": %.3f,\n"
                 "  \"wall_seconds\": %.3f,\n"
                 "  \"serial_sims_per_sec\": %.4f,\n"
                 "  \"parallel_sims_per_sec\": %.4f,\n"
                 "  \"speedup\": %.3f\n"
                 "}\n",
                 t.bench.c_str(), t.jobs,
                 static_cast<unsigned long long>(t.sims), t.cpuSeconds,
                 t.wallSeconds, serial, parallel, speedup);
    std::fclose(f);
}

void
registerPerfRecord()
{
    static std::once_flag once;
    std::call_once(once, [] { std::atexit(writePerfRecord); });
}

} // namespace

const char *
usageString()
{
    return "usage: <bench> [flags]\n"
           "  --mixes=N    multiprogrammed workloads per experiment "
           "(default 5)\n"
           "  --scale=N    capacity divisor, 1 = paper-size caches "
           "(default 8)\n"
           "  --warmup=N   warmup cycles (default 3000000)\n"
           "  --measure=N  measured cycles (default 12000000)\n"
           "  --seed=N     base RNG seed (default 42)\n"
           "  --jobs=N     concurrent simulations (default: hardware "
           "threads; 1 = serial)\n"
           "  --full       paper-strength settings (100 mixes, longer "
           "windows)\n"
           "  --help       print this text and exit\n";
}

RunOptions
parseArgs(int argc, char **argv)
{
    if (argc > 0 && argv[0]) {
        const char *base = std::strrchr(argv[0], '/');
        std::lock_guard<std::mutex> lock(perfTotals().mu);
        perfTotals().bench = base ? base + 1 : argv[0];
    }
    RunOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
        };
        if (const char *v = value("--mixes=")) {
            opt.mixCount = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--scale=")) {
            opt.scale = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--warmup=")) {
            opt.warmup = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--measure=")) {
            opt.measure = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--seed=")) {
            opt.seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--jobs=")) {
            const int jobs = std::atoi(v);
            if (jobs < 1)
                fatal("--jobs must be >= 1 (got '%s'); use --jobs=1 for "
                      "the serial path", v);
            opt.jobs = static_cast<std::uint32_t>(jobs);
        } else if (std::strcmp(arg, "--full") == 0) {
            opt.mixCount = 100;
            opt.warmup = 5'000'000;
            opt.measure = 20'000'000;
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf("%s", usageString());
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s", usageString());
            fatal("unknown flag '%s'", arg);
        }
    }
    if (opt.mixCount == 0 || opt.scale == 0 || opt.measure == 0)
        fatal("mixes, scale and measure must be positive");
    return opt;
}

std::uint32_t
effectiveJobs(const RunOptions &opt)
{
    return opt.jobs ? opt.jobs
                    : static_cast<std::uint32_t>(
                          TaskPool::defaultConcurrency());
}

void
forEachRun(std::size_t n, const RunOptions &opt,
           const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    registerPerfRecord();
    const std::uint32_t jobs = effectiveJobs(opt);

    using clock = std::chrono::steady_clock;
    std::atomic<std::uint64_t> runNanos{0};
    auto timed = [&](std::size_t i) {
        const auto t0 = clock::now();
        body(i);
        runNanos.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock::now() - t0).count()),
            std::memory_order_relaxed);
    };

    const auto wall0 = clock::now();
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            timed(i);
    } else {
        TaskPool pool(std::min<std::size_t>(jobs, n));
        pool.parallelFor(0, n, timed);
    }
    const double wall =
        std::chrono::duration<double>(clock::now() - wall0).count();

    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    t.sims += n;
    t.cpuSeconds += static_cast<double>(runNanos.load()) * 1e-9;
    t.wallSeconds += wall;
    t.jobs = jobs;
}

double
speedupRatio(double sys_ipc, double baseline_ipc)
{
    return baseline_ipc > 0.0 ? sys_ipc / baseline_ipc : 0.0;
}

namespace
{

RunResult
collect(Cmp &cmp)
{
    RunResult res;
    res.aggregateIpc = cmp.aggregateIpc();
    for (CoreId c = 0; c < cmp.numCores(); ++c) {
        res.coreIpc.push_back(cmp.ipc(c));
        res.mpki.push_back(cmp.measuredMpki(c));
    }
    const StatSet &llc = cmp.llc().stats();
    res.llcAccesses = llc.ref("accesses");
    if (const Counter *tagMisses = llc.tryRef("tagMisses"))
        res.llcMemFetches = *tagMisses;
    if (const auto *reuse = dynamic_cast<const ReuseCache *>(&cmp.llc()))
        res.fracNeverEnteredData = reuse->fractionNeverEnteredData();
    res.dramReads = cmp.memory().totalReads();
    return res;
}

} // namespace

RunResult
runMix(const SystemConfig &sys, const Mix &mix, const RunOptions &opt,
       GenerationTracker *tracker, Cycle *win_start, Cycle *win_end)
{
    SystemConfig cfg = sys;
    cfg.seed = opt.seed;
    Cmp cmp(cfg, buildMixStreams(mix, opt.seed, opt.scale));
    if (tracker)
        cmp.llc().setObserver(tracker);
    cmp.run(opt.warmup);
    cmp.beginMeasurement();
    if (win_start)
        *win_start = cmp.now();
    cmp.run(opt.measure);
    if (win_end)
        *win_end = cmp.now();
    const RunResult res = collect(cmp);
    if (tracker) {
        // Cooldown: liveness is future knowledge ("will this line be
        // hit again?"), so keep simulating past the reported window;
        // otherwise every line looks dead near the window's end.
        cmp.run(opt.measure / 2);
        tracker->finalize(cmp.now());
    }
    return res;
}

RunResult
runParallel(const SystemConfig &sys, const AppProfile &app,
            const RunOptions &opt)
{
    SystemConfig cfg = sys;
    cfg.seed = opt.seed;
    Cmp cmp(cfg, buildParallelStreams(app, cfg.numCores, opt.seed,
                                      opt.scale));
    cmp.run(opt.warmup);
    cmp.beginMeasurement();
    cmp.run(opt.measure);
    return collect(cmp);
}

std::vector<RunResult>
runBaselineOverMixes(const SystemConfig &baseline,
                     const std::vector<Mix> &mixes, const RunOptions &opt)
{
    std::vector<RunResult> results(mixes.size());
    forEachRun(mixes.size(), opt, [&](std::size_t i) {
        results[i] = runMix(baseline, mixes[i], opt);
    });
    return results;
}

SpeedupSummary
compareAgainst(const SystemConfig &sys, const std::vector<Mix> &mixes,
               const std::vector<RunResult> &baseline,
               const RunOptions &opt)
{
    RC_ASSERT(mixes.size() == baseline.size(),
              "baseline results do not match the mix list");
    SpeedupSummary s;
    s.perMix.assign(mixes.size(), 0.0);
    forEachRun(mixes.size(), opt, [&](std::size_t i) {
        const RunResult r = runMix(sys, mixes[i], opt);
        s.perMix[i] = speedupRatio(r.aggregateIpc,
                                   baseline[i].aggregateIpc);
    });
    // One pass over the filled vector: seed min/max from the first
    // element instead of pre-initializing them ahead of the loop.
    double sum = 0.0;
    for (std::size_t i = 0; i < s.perMix.size(); ++i) {
        const double v = s.perMix[i];
        sum += v;
        if (i == 0) {
            s.min = s.max = v;
        } else {
            s.min = std::min(s.min, v);
            s.max = std::max(s.max, v);
        }
    }
    s.mean = s.perMix.empty() ? 0.0
                              : sum / static_cast<double>(s.perMix.size());
    return s;
}

SpeedupSummary
compareOverMixes(const SystemConfig &sys, const SystemConfig &baseline,
                 const std::vector<Mix> &mixes, const RunOptions &opt)
{
    return compareAgainst(sys, mixes,
                          runBaselineOverMixes(baseline, mixes, opt), opt);
}

void
printHeader(const std::string &artifact, const std::string &claim,
            const RunOptions &opt)
{
    std::printf("== %s ==\n", artifact.c_str());
    std::printf("paper: %s\n", claim.c_str());
    std::printf("settings: %u mixes, scale 1/%u, warmup %llu, "
                "measure %llu cycles, seed %llu, %u jobs\n",
                opt.mixCount, opt.scale,
                static_cast<unsigned long long>(opt.warmup),
                static_cast<unsigned long long>(opt.measure),
                static_cast<unsigned long long>(opt.seed),
                effectiveJobs(opt));
    std::fflush(stdout);
}

} // namespace rc::bench
