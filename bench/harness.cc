#include "harness.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/log.hh"
#include "common/task_pool.hh"
#include "reuse/reuse_cache.hh"
#include "verify/fault_injector.hh"
#include "verify/integrity.hh"

namespace rc::bench
{

namespace
{

/**
 * Aggregate throughput of every forEachRun batch in this process, for
 * the BENCH_harness.json record written at exit.  cpuSeconds sums the
 * individual run durations (the serial-equivalent time); wallSeconds
 * sums the batch wall clocks, so cpu/wall is the realized speedup.
 */
struct PerfTotals
{
    std::mutex mu;
    std::string bench = "harness";
    std::uint64_t sims = 0;
    double cpuSeconds = 0.0;
    double wallSeconds = 0.0;
    std::uint32_t jobs = 1;
    std::uint64_t runsOk = 0;
    std::uint64_t runsRetried = 0;
    std::uint64_t runsQuarantined = 0;
    std::vector<RunOutcome> outcomes; //!< per-run records, batch order
};

/** Batch-local run index of the calling worker (npos outside a run). */
thread_local std::size_t tlsRunIndex = SIZE_MAX;

/** Attempt number of the calling worker's current run. */
thread_local std::uint32_t tlsAttempt = 0;

/** Exit nonzero when quarantined runs remain (parseArgs guard). */
std::atomic<bool> exitOnQuarantineFlag{true};

/** Escape a string for embedding in a JSON literal. */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

PerfTotals &
perfTotals()
{
    static PerfTotals t;
    return t;
}

std::string
perfRecordJsonLocked(const PerfTotals &t)
{
    const double serial =
        t.cpuSeconds > 0.0 ? static_cast<double>(t.sims) / t.cpuSeconds
                           : 0.0;
    const double parallel =
        t.wallSeconds > 0.0 ? static_cast<double>(t.sims) / t.wallSeconds
                            : 0.0;
    const double speedup =
        t.wallSeconds > 0.0 ? t.cpuSeconds / t.wallSeconds : 0.0;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"%s\",\n"
                  "  \"jobs\": %u,\n"
                  "  \"sims\": %llu,\n"
                  "  \"cpu_seconds\": %.3f,\n"
                  "  \"wall_seconds\": %.3f,\n"
                  "  \"serial_sims_per_sec\": %.4f,\n"
                  "  \"parallel_sims_per_sec\": %.4f,\n"
                  "  \"speedup\": %.3f,\n"
                  "  \"runs_ok\": %llu,\n"
                  "  \"runs_retried\": %llu,\n"
                  "  \"runs_quarantined\": %llu,\n"
                  "  \"runs\": [",
                  t.bench.c_str(), t.jobs,
                  static_cast<unsigned long long>(t.sims), t.cpuSeconds,
                  t.wallSeconds, serial, parallel, speedup,
                  static_cast<unsigned long long>(t.runsOk),
                  static_cast<unsigned long long>(t.runsRetried),
                  static_cast<unsigned long long>(t.runsQuarantined));
    std::string out = buf;
    for (std::size_t i = 0; i < t.outcomes.size(); ++i) {
        const RunOutcome &o = t.outcomes[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"index\": %zu, \"status\": \"%s\", "
                      "\"attempts\": %u, \"wall_seconds\": %.3f",
                      i == 0 ? "" : ",", o.index, toString(o.status),
                      o.attempts, o.wallSeconds);
        out += buf;
        if (!o.error.empty())
            out += ", \"error\": \"" + jsonEscape(o.error) + "\"";
        out += "}";
    }
    out += t.outcomes.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

void
writePerfRecord()
{
    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    if (t.sims == 0)
        return;
    std::FILE *f = std::fopen("BENCH_harness.json", "w");
    if (!f) {
        warn("cannot write BENCH_harness.json");
        return;
    }
    const std::string json = perfRecordJsonLocked(t);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

void
registerPerfRecord()
{
    static std::once_flag once;
    std::call_once(once, [] {
        // Construct the totals BEFORE registering the handler: function
        // statics are destroyed in reverse construction order, so this
        // guarantees writePerfRecord runs while they are still alive.
        perfTotals();
        std::atexit(writePerfRecord);
    });
}

/**
 * Exit-code guard: a sweep with runs still quarantined must not look
 * successful to scripts.  Runs after writePerfRecord (atexit is LIFO
 * and parseArgs registers this guard first), so the JSON is on disk
 * before _Exit.
 */
void
quarantineExitGuard()
{
    if (!exitOnQuarantineFlag.load(std::memory_order_relaxed))
        return;
    const std::uint64_t q = quarantinedRunsTotal();
    if (q == 0)
        return;
    std::fprintf(stderr,
                 "harness: %llu run(s) stayed quarantined; exiting "
                 "nonzero\n", static_cast<unsigned long long>(q));
    std::fflush(stderr);
    std::_Exit(1);
}

void
registerQuarantineGuard()
{
    static std::once_flag once;
    std::call_once(once, [] {
        perfTotals(); // keep alive for the guard (see registerPerfRecord)
        std::atexit(quarantineExitGuard);
    });
}

} // namespace

const char *
toString(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok: return "ok";
      case RunStatus::Retried: return "retried";
      case RunStatus::Quarantined: return "quarantined";
    }
    return "unknown";
}

std::size_t
currentRunIndex()
{
    return tlsRunIndex;
}

std::uint32_t
currentAttempt()
{
    return tlsAttempt;
}

std::uint64_t
quarantinedRunsTotal()
{
    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.runsQuarantined;
}

void
setExitOnQuarantine(bool enable)
{
    exitOnQuarantineFlag.store(enable, std::memory_order_relaxed);
}

std::string
perfRecordJson()
{
    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    return perfRecordJsonLocked(t);
}

const char *
usageString()
{
    return "usage: <bench> [flags]\n"
           "  --mixes=N    multiprogrammed workloads per experiment "
           "(default 5)\n"
           "  --scale=N    capacity divisor, 1 = paper-size caches "
           "(default 8)\n"
           "  --warmup=N   warmup cycles (default 3000000)\n"
           "  --measure=N  measured cycles (default 12000000)\n"
           "  --seed=N     base RNG seed (default 42)\n"
           "  --jobs=N     concurrent simulations (default: hardware "
           "threads; 1 = serial)\n"
           "  --check-interval=N  walk the integrity checker every N "
           "references (0 = off)\n"
           "  --inject=CLASS[@IDX]  poison run IDX (default 0) of each "
           "batch with one CLASS fault\n"
           "               (tag-state, dir-drop, dir-ghost, owner, "
           "orphan-data, mshr-leak, repl-meta)\n"
           "  --full       paper-strength settings (100 mixes, longer "
           "windows)\n"
           "  --help       print this text and exit\n";
}

RunOptions
parseArgs(int argc, char **argv)
{
    if (argc > 0 && argv[0]) {
        const char *base = std::strrchr(argv[0], '/');
        std::lock_guard<std::mutex> lock(perfTotals().mu);
        perfTotals().bench = base ? base + 1 : argv[0];
    }
    // Guard first, JSON writer second: atexit runs LIFO, so the perf
    // record is on disk before the guard can _Exit nonzero.
    registerQuarantineGuard();
    registerPerfRecord();
    RunOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
        };
        if (const char *v = value("--mixes=")) {
            opt.mixCount = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--scale=")) {
            opt.scale = static_cast<std::uint32_t>(std::atoi(v));
        } else if (const char *v = value("--warmup=")) {
            opt.warmup = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--measure=")) {
            opt.measure = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--seed=")) {
            opt.seed = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--jobs=")) {
            const int jobs = std::atoi(v);
            if (jobs < 1)
                fatal("--jobs must be >= 1 (got '%s'); use --jobs=1 for "
                      "the serial path", v);
            opt.jobs = static_cast<std::uint32_t>(jobs);
        } else if (const char *v = value("--check-interval=")) {
            opt.checkInterval = static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--inject=")) {
            std::string spec = v;
            if (const std::size_t at = spec.find('@');
                at != std::string::npos) {
                opt.injectRun =
                    static_cast<std::size_t>(std::atoll(spec.c_str() +
                                                        at + 1));
                spec.resize(at);
            }
            FaultClass cls = FaultClass::TagStateFlip;
            if (!faultClassFromName(spec, cls))
                fatal("unknown fault class '%s'; known classes: "
                      "tag-state, dir-drop, dir-ghost, owner, "
                      "orphan-data, mshr-leak, repl-meta", spec.c_str());
            opt.injectFault = spec;
        } else if (std::strcmp(arg, "--full") == 0) {
            opt.mixCount = 100;
            opt.warmup = 5'000'000;
            opt.measure = 20'000'000;
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf("%s", usageString());
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s", usageString());
            fatal("unknown flag '%s'", arg);
        }
    }
    if (opt.mixCount == 0 || opt.scale == 0 || opt.measure == 0)
        fatal("mixes, scale and measure must be positive");
    return opt;
}

std::uint32_t
effectiveJobs(const RunOptions &opt)
{
    return opt.jobs ? opt.jobs
                    : static_cast<std::uint32_t>(
                          TaskPool::defaultConcurrency());
}

std::vector<RunOutcome>
forEachRun(std::size_t n, const RunOptions &opt,
           const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return {};
    registerPerfRecord();
    const std::uint32_t jobs = effectiveJobs(opt);

    using clock = std::chrono::steady_clock;
    std::atomic<std::uint64_t> runNanos{0};
    std::vector<RunOutcome> outcomes(n);
    // Crash isolation: a SimError fails only this run — retry once,
    // then quarantine.  Anything else still propagates (a logic bug in
    // the harness must not be silently absorbed).
    auto guarded = [&](std::size_t i) {
        RunOutcome &out = outcomes[i];
        out.index = i;
        tlsRunIndex = i;
        const auto t0 = clock::now();
        for (std::uint32_t attempt = 0;; ++attempt) {
            tlsAttempt = attempt;
            out.attempts = attempt + 1;
            try {
                body(i);
                out.status =
                    attempt == 0 ? RunStatus::Ok : RunStatus::Retried;
                out.error.clear();
                break;
            } catch (const SimError &err) {
                out.error = err.what();
                warn("run %zu attempt %u failed: %s%s", i, attempt + 1,
                     err.what(),
                     attempt == 0 ? " -- retrying" : " -- quarantined");
                if (attempt == 1) {
                    out.status = RunStatus::Quarantined;
                    break;
                }
            }
        }
        tlsRunIndex = SIZE_MAX;
        tlsAttempt = 0;
        out.wallSeconds =
            std::chrono::duration<double>(clock::now() - t0).count();
        runNanos.fetch_add(
            static_cast<std::uint64_t>(out.wallSeconds * 1e9),
            std::memory_order_relaxed);
    };

    const auto wall0 = clock::now();
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            guarded(i);
    } else {
        TaskPool pool(std::min<std::size_t>(jobs, n));
        pool.parallelFor(0, n, guarded);
    }
    const double wall =
        std::chrono::duration<double>(clock::now() - wall0).count();

    PerfTotals &t = perfTotals();
    std::lock_guard<std::mutex> lock(t.mu);
    t.sims += n;
    t.cpuSeconds += static_cast<double>(runNanos.load()) * 1e-9;
    t.wallSeconds += wall;
    t.jobs = jobs;
    for (const RunOutcome &o : outcomes) {
        switch (o.status) {
          case RunStatus::Ok: ++t.runsOk; break;
          case RunStatus::Retried: ++t.runsRetried; break;
          case RunStatus::Quarantined: ++t.runsQuarantined; break;
        }
        t.outcomes.push_back(o);
    }
    return outcomes;
}

double
speedupRatio(double sys_ipc, double baseline_ipc)
{
    return baseline_ipc > 0.0 ? sys_ipc / baseline_ipc : 0.0;
}

namespace
{

RunResult
collect(Cmp &cmp)
{
    RunResult res;
    res.aggregateIpc = cmp.aggregateIpc();
    for (CoreId c = 0; c < cmp.numCores(); ++c) {
        res.coreIpc.push_back(cmp.ipc(c));
        res.mpki.push_back(cmp.measuredMpki(c));
    }
    const StatSet &llc = cmp.llc().stats();
    res.llcAccesses = llc.ref("accesses");
    if (const Counter *tagMisses = llc.tryRef("tagMisses"))
        res.llcMemFetches = *tagMisses;
    if (const auto *reuse = dynamic_cast<const ReuseCache *>(&cmp.llc()))
        res.fracNeverEnteredData = reuse->fractionNeverEnteredData();
    res.dramReads = cmp.memory().totalReads();
    return res;
}

/** Is the calling thread's run the --inject target, this attempt? */
bool
isInjectTarget(const RunOptions &opt)
{
    return !opt.injectFault.empty() &&
           currentRunIndex() == opt.injectRun &&
           (opt.injectOnRetry || currentAttempt() == 0);
}

/**
 * Cadence for the integrity checker: the explicit --check-interval, or
 * a default one on a poisoned run so the injected fault is actually
 * caught mid-run rather than only at quiesce.
 */
std::uint64_t
checkCadence(const RunOptions &opt)
{
    if (opt.checkInterval != 0)
        return opt.checkInterval;
    return isInjectTarget(opt) ? 5'000 : 0;
}

void
applyInjectedFault(Cmp &cmp, const RunOptions &opt)
{
    FaultClass cls = FaultClass::TagStateFlip;
    if (!faultClassFromName(opt.injectFault, cls))
        throwSimError(SimError::Kind::Config,
                      "unknown fault class '%s'",
                      opt.injectFault.c_str());
    // Per-run seed: deterministic, but distinct targets across runs.
    FaultInjector injector(opt.seed + currentRunIndex());
    const InjectionResult r = injector.inject(cmp, cls);
    warn("run %zu attempt %u: inject %s: %s", currentRunIndex(),
         currentAttempt() + 1, toString(cls), r.detail.c_str());
}

} // namespace

RunResult
runMix(const SystemConfig &sys, const Mix &mix, const RunOptions &opt,
       GenerationTracker *tracker, Cycle *win_start, Cycle *win_end)
{
    SystemConfig cfg = sys;
    cfg.seed = opt.seed;
    Cmp cmp(cfg, buildMixStreams(mix, opt.seed, opt.scale));
    if (tracker)
        cmp.llc().setObserver(tracker);
    IntegrityChecker checker(cmp);
    const std::uint64_t cadence = checkCadence(opt);
    if (cadence != 0)
        cmp.setCheckHook(cadence, [&checker](const Cmp &, Cycle now) {
            checker.enforce(now);
        });
    cmp.run(opt.warmup);
    if (isInjectTarget(opt))
        applyInjectedFault(cmp, opt);
    cmp.beginMeasurement();
    if (win_start)
        *win_start = cmp.now();
    cmp.run(opt.measure);
    if (win_end)
        *win_end = cmp.now();
    const RunResult res = collect(cmp);
    if (tracker) {
        // Cooldown: liveness is future knowledge ("will this line be
        // hit again?"), so keep simulating past the reported window;
        // otherwise every line looks dead near the window's end.
        cmp.run(opt.measure / 2);
        tracker->finalize(cmp.now());
    }
    if (cadence != 0)
        checker.enforceQuiesce(cmp.now());
    return res;
}

RunResult
runParallel(const SystemConfig &sys, const AppProfile &app,
            const RunOptions &opt)
{
    SystemConfig cfg = sys;
    cfg.seed = opt.seed;
    Cmp cmp(cfg, buildParallelStreams(app, cfg.numCores, opt.seed,
                                      opt.scale));
    IntegrityChecker checker(cmp);
    const std::uint64_t cadence = checkCadence(opt);
    if (cadence != 0)
        cmp.setCheckHook(cadence, [&checker](const Cmp &, Cycle now) {
            checker.enforce(now);
        });
    cmp.run(opt.warmup);
    if (isInjectTarget(opt))
        applyInjectedFault(cmp, opt);
    cmp.beginMeasurement();
    cmp.run(opt.measure);
    const RunResult res = collect(cmp);
    if (cadence != 0)
        checker.enforceQuiesce(cmp.now());
    return res;
}

std::vector<RunResult>
runBaselineOverMixes(const SystemConfig &baseline,
                     const std::vector<Mix> &mixes, const RunOptions &opt)
{
    std::vector<RunResult> results(mixes.size());
    forEachRun(mixes.size(), opt, [&](std::size_t i) {
        results[i] = runMix(baseline, mixes[i], opt);
    });
    return results;
}

SpeedupSummary
compareAgainst(const SystemConfig &sys, const std::vector<Mix> &mixes,
               const std::vector<RunResult> &baseline,
               const RunOptions &opt)
{
    RC_ASSERT(mixes.size() == baseline.size(),
              "baseline results do not match the mix list");
    SpeedupSummary s;
    s.perMix.assign(mixes.size(), 0.0);
    forEachRun(mixes.size(), opt, [&](std::size_t i) {
        const RunResult r = runMix(sys, mixes[i], opt);
        s.perMix[i] = speedupRatio(r.aggregateIpc,
                                   baseline[i].aggregateIpc);
    });
    // One pass over the filled vector: seed min/max from the first
    // element instead of pre-initializing them ahead of the loop.
    double sum = 0.0;
    for (std::size_t i = 0; i < s.perMix.size(); ++i) {
        const double v = s.perMix[i];
        sum += v;
        if (i == 0) {
            s.min = s.max = v;
        } else {
            s.min = std::min(s.min, v);
            s.max = std::max(s.max, v);
        }
    }
    s.mean = s.perMix.empty() ? 0.0
                              : sum / static_cast<double>(s.perMix.size());
    return s;
}

SpeedupSummary
compareOverMixes(const SystemConfig &sys, const SystemConfig &baseline,
                 const std::vector<Mix> &mixes, const RunOptions &opt)
{
    return compareAgainst(sys, mixes,
                          runBaselineOverMixes(baseline, mixes, opt), opt);
}

void
printHeader(const std::string &artifact, const std::string &claim,
            const RunOptions &opt)
{
    std::printf("== %s ==\n", artifact.c_str());
    std::printf("paper: %s\n", claim.c_str());
    std::printf("settings: %u mixes, scale 1/%u, warmup %llu, "
                "measure %llu cycles, seed %llu, %u jobs\n",
                opt.mixCount, opt.scale,
                static_cast<unsigned long long>(opt.warmup),
                static_cast<unsigned long long>(opt.measure),
                static_cast<unsigned long long>(opt.seed),
                effectiveJobs(opt));
    std::fflush(stdout);
}

} // namespace rc::bench
