/**
 * @file
 * Ablation study of the reuse cache's design choices (not a paper
 * figure; supports DESIGN.md):
 *
 *  1. tag-array replacement: the paper argues NRR (reuse bits + full-map
 *     presence) is the right policy; compare against LRU/NRU/DRRIP tags;
 *  2. data-array replacement: the paper uses Clock for the fully
 *     associative array "even cheaper than NRU"; compare Clock, NRU,
 *     LRU and Random;
 *  3. the Section 6 extension: a bimodal reuse predictor that installs
 *     predicted-reused lines in the data array on the first access,
 *     avoiding the double memory fetch.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Ablation: reuse-cache design choices (RC-4/1)",
        "NRR tags and Clock data are the paper's picks; the reuse "
        "predictor is the paper's suggested extension");

    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const auto base =
        bench::runBaselineOverMixes(bench::baselineFor(opt), mixes, opt);

    Table t("RC-4/1 variants, speedup over conv-8MB-LRU");
    t.header({"variant", "mean", "min", "max"});

    auto eval = [&](const std::string &name, SystemConfig sys) {
        const auto s = bench::compareAgainst(sys, mixes, base, opt);
        t.row({name, fmtDouble(s.mean), fmtDouble(s.min),
               fmtDouble(s.max)});
        std::cout << "  " << name << ": " << fmtDouble(s.mean) << "\n"
                  << std::flush;
    };

    // 1. Tag replacement.
    for (ReplKind tag_repl : {ReplKind::NRR, ReplKind::LRU, ReplKind::NRU,
                              ReplKind::DRRIP}) {
        SystemConfig sys = reuseSystem(4, 1, 0, opt.scale);
        sys.reuse.tagRepl = tag_repl;
        eval(std::string("tags=") + toString(tag_repl) + " data=Clock",
             sys);
    }

    // 2. Data replacement (fully associative array).
    for (ReplKind data_repl : {ReplKind::NRU, ReplKind::LRU,
                               ReplKind::Random}) {
        SystemConfig sys = reuseSystem(4, 1, 0, opt.scale);
        sys.reuse.dataRepl = data_repl;
        eval(std::string("tags=NRR data=") + toString(data_repl), sys);
    }

    // 3. Reuse predictor extension.
    {
        SystemConfig sys = reuseSystem(4, 1, 0, opt.scale);
        sys.reuse.usePredictor = true;
        eval("tags=NRR data=Clock + reuse predictor", sys);
    }

    // 4. Prefetching (Section 6): the stride prefetcher feeds the
    //    prefetch-aware policies; prefetched lines never allocate data
    //    and a prefetch hit is not a reuse.
    {
        SystemConfig sys = reuseSystem(4, 1, 0, opt.scale);
        sys.prefetch.enable = true;
        eval("tags=NRR data=Clock + stride prefetcher", sys);
    }
    {
        SystemConfig sys = bench::baselineFor(opt);
        sys.prefetch.enable = true;
        eval("conv-8MB-LRU + stride prefetcher (reference)", sys);
    }

    t.print(std::cout);
    std::cout << "\nexpected: NRR tags beat recency-only tag policies "
                 "(they protect private-cache lines and reused lines); "
                 "data policies differ little (recency suffices); the "
                 "predictor recovers part of the double-fetch cost\n";
    return 0;
}
