/**
 * @file
 * Kernel micro-benchmark: serial hot-loop throughput on a
 * table5_mpki-shaped workload (homogeneous 8-core mixes on the 8 MB LRU
 * baseline), bypassing the sweep machinery so the number isolates the
 * simulation kernel itself: reference generation, private lookups, SLLC
 * dispatch and the DRAM model.
 *
 * Writes BENCH_kernel.json:
 *   serial_sims_per_sec   completed runs / simulated wall seconds
 *   accesses_per_sec      completed core references / simulated seconds
 *   phases                per-phase wall-second breakdown (build,
 *                         warmup, measure), mirrored on the EventTracer
 *                         host track ("kernel.build" / "kernel.warmup" /
 *                         "kernel.measure")
 *   stats_digest          FNV-1a over every run's full LLC stats JSON —
 *                         identical across kernel refactors iff the
 *                         stats are bit-identical
 *
 * A second measurement covers the single-pass fan-out path: the
 * paper's headline reuse-cache sweep (six sizing/policy variants that
 * share the private hierarchy) runs once as six independent Cmp runs
 * and once as one FanoutCmp, hard-asserting per-config LLC stats
 * digests match before reporting:
 *   independent_sims_per_sec  six configs, one Cmp each
 *   fanout_sims_per_sec       six configs, one shared front end
 *   fanout_speedup            ratio of the two
 *
 * A third measurement covers the persistent feed cache: the same sweep
 * runs once cold (front end simulated in capture mode, blob stored)
 * and once warm (front end replayed zero-copy from the mapped blob),
 * both digest-checked against the independent pass:
 *   feedcache_cold_sims_per_sec  simulate + capture + store
 *   feedcache_warm_sims_per_sec  lookup + replay (SLLC-only)
 *   feedcache_speedup            cold wall / warm wall
 *
 * Extra flags (on top of the common harness set):
 *   --baseline=FILE   prior BENCH_kernel.json to gate against
 *   --tolerance=F     allowed fractional drop vs baseline (default 0.20)
 * With --baseline, exits 2 when serial OR fan-out sims/sec lands below
 * its baseline * (1 - tolerance); CI points this at the repo-recorded
 * record so kernel regressions fail the perf-smoke job.  A baseline
 * file without fan-out fields gates the serial number only.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "cache/replacement.hh"
#include "common/log.hh"
#include "harness.hh"
#include "sim/cmp.hh"
#include "sim/fanout.hh"
#include "sim/system_config.hh"
#include "telemetry/trace_event.hh"
#include "workloads/mixes.hh"

namespace
{

using namespace rc;

/** Homogeneous-mix applications; a spread of table5_mpki behaviors. */
const char *const kApps[] = {
    "mcf", "libquantum", "gcc", "lbm", "omnetpp", "namd", "sphinx3",
    "hmmer",
};

/** FNV-1a 64-bit. */
std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = 0xcbf29ce484222325ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Throughput numbers recorded in a prior BENCH_kernel.json. */
struct BaselineRecord {
    double serialSimsPerSec = 0.0;
    double fanoutSimsPerSec = 0.0; ///< 0 when the record predates fan-out
    //! 0 when the record predates the feed cache
    double feedWarmSimsPerSec = 0.0;
    double feedSpeedup = 0.0;
};

BaselineRecord
readBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        rc::panic("cannot read baseline record '%s'", path.c_str());
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const auto field = [&](const char *key, bool required) {
        const std::size_t pos = text.find(key);
        if (pos == std::string::npos) {
            if (required)
                rc::panic("'%s' carries no %s field", path.c_str(), key);
            return 0.0;
        }
        return std::strtod(text.c_str() + pos + std::strlen(key),
                           nullptr);
    };
    BaselineRecord rec;
    rec.serialSimsPerSec = field("\"serial_sims_per_sec\":", true);
    rec.fanoutSimsPerSec = field("\"fanout_sims_per_sec\":", false);
    rec.feedWarmSimsPerSec =
        field("\"feedcache_warm_sims_per_sec\":", false);
    rec.feedSpeedup = field("\"feedcache_speedup\":", false);
    return rec;
}

/** Remove the scratch feed-cache directory (known names only). */
void
removeFeedDir(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    while (struct dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
}

/**
 * The paper's headline sweep as fan-out members: six reuse-cache
 * sizing/policy variants over one private hierarchy.  Every entry
 * shares the front-end prefix (cores, L1/L2 geometry, seed, scale) so
 * one FanoutCmp can drive all six from a single classified stream.
 */
std::vector<rc::SystemConfig>
fanoutSweep(std::uint32_t scale, std::uint64_t seed)
{
    using namespace rc;
    // The paper's headline experiment (Fig. 4): hold the tag array at
    // full coverage and sweep the data array down from conventional
    // size, showing how little data capacity the reuse cache needs.
    // All six members share the identical private prefix, so one
    // front-end pass feeds the whole sweep.
    std::vector<SystemConfig> cfgs;
    cfgs.push_back(reuseSystem(8.0, 8.0, 16, scale));  // full-size data
    cfgs.push_back(reuseSystem(8.0, 4.0, 16, scale));  // 1/2 data
    cfgs.push_back(reuseSystem(8.0, 2.0, 16, scale));  // 1/4 data
    cfgs.push_back(reuseSystem(8.0, 1.0, 16, scale));  // 1/8 data
    cfgs.push_back(reuseSystem(8.0, 0.5, 16, scale));  // 1/16 data
    cfgs.push_back(reuseSystem(8.0, 0.25, 16, scale)); // 1/32 data
    for (SystemConfig &c : cfgs)
        c.seed = seed;
    return cfgs;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rc;

    // Strip the bench-local flags before the common parser sees them.
    std::string baselinePath;
    double tolerance = 0.20;
    std::vector<char *> rest;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baselinePath = argv[i] + 11;
        else if (std::strncmp(argv[i], "--tolerance=", 12) == 0)
            tolerance = std::strtod(argv[i] + 12, nullptr);
        else
            rest.push_back(argv[i]);
    }

    const auto opt = bench::initBench(
        static_cast<int>(rest.size()), rest.data(),
        "Kernel throughput: serial sims/sec on the table5 workload",
        "hot-path changes keep stats bit-identical (stats_digest) while "
        "serial sims/sec tracks the BENCH_kernel.json trajectory");

    EventTracer tracer;
    double buildSec = 0.0, warmupSec = 0.0, measureSec = 0.0;
    std::uint64_t accesses = 0;
    std::uint64_t digest = 0xcbf29ce484222325ull;
    const std::size_t runs = std::size(kApps);

    for (std::size_t i = 0; i < runs; ++i) {
        Mix mix;
        for (int c = 0; c < 8; ++c)
            mix.apps.push_back(kApps[i]);
        SystemConfig cfg = baselineSystem(opt.scale);
        cfg.seed = opt.seed;

        const std::uint64_t t0 = tracer.hostNowMicros();
        Cmp sim(cfg, buildMixStreams(mix, opt.seed, opt.scale));
        const std::uint64_t t1 = tracer.hostNowMicros();
        tracer.recordHost("kernel.build", 0, t1 - t0);
        sim.run(opt.warmup);
        const std::uint64_t t2 = tracer.hostNowMicros();
        tracer.recordHost("kernel.warmup", 0, t2 - t1);
        sim.beginMeasurement();
        sim.run(opt.measure);
        const std::uint64_t t3 = tracer.hostNowMicros();
        tracer.recordHost("kernel.measure", 0, t3 - t2);

        buildSec += static_cast<double>(t1 - t0) * 1e-6;
        warmupSec += static_cast<double>(t2 - t1) * 1e-6;
        measureSec += static_cast<double>(t3 - t2) * 1e-6;
        accesses += sim.referencesProcessed();

        std::ostringstream os;
        sim.llc().stats().dumpJson(os);
        digest = fnv1a(os.str(), digest);
    }

    const double simSec = warmupSec + measureSec;
    const double simsPerSec =
        simSec > 0.0 ? static_cast<double>(runs) / simSec : 0.0;
    const double accPerSec =
        simSec > 0.0 ? static_cast<double>(accesses) / simSec : 0.0;

    // --- Fan-out measurement: the six-config reuse sweep, first as six
    // independent Cmp runs, then as one FanoutCmp.  The fan-out pass
    // must be a pure speedup: per-config LLC stats are digested and
    // hard-checked against the independent pass before any number is
    // reported.
    Mix fanMix;
    for (int c = 0; c < 8; ++c)
        fanMix.apps.push_back(kApps[c]);
    const auto sweep = fanoutSweep(opt.scale, opt.seed);
    const std::size_t fanRuns = sweep.size();

    std::vector<std::uint64_t> indepDigests;
    double indepSec = 0.0;
    for (const SystemConfig &cfg : sweep) {
        Cmp sim(cfg, buildMixStreams(fanMix, opt.seed, opt.scale));
        const std::uint64_t t0 = tracer.hostNowMicros();
        sim.run(opt.warmup);
        sim.beginMeasurement();
        sim.run(opt.measure);
        const std::uint64_t t1 = tracer.hostNowMicros();
        tracer.recordHost("kernel.fanout.independent", 0, t1 - t0);
        indepSec += static_cast<double>(t1 - t0) * 1e-6;
        std::ostringstream os;
        sim.llc().stats().dumpJson(os);
        indepDigests.push_back(fnv1a(os.str()));
    }

    FanoutCmp fan(sweep, [&fanMix, &opt] {
        return buildMixStreams(fanMix, opt.seed, opt.scale);
    });
    const std::uint64_t f0 = tracer.hostNowMicros();
    fan.run(opt.warmup);
    fan.beginMeasurement();
    fan.run(opt.measure);
    const std::uint64_t f1 = tracer.hostNowMicros();
    tracer.recordHost("kernel.fanout.lockstep", 0, f1 - f0);
    const double fanSec = static_cast<double>(f1 - f0) * 1e-6;

    for (std::size_t j = 0; j < fanRuns; ++j) {
        std::ostringstream os;
        fan.member(j).llc().stats().dumpJson(os);
        if (fnv1a(os.str()) != indepDigests[j])
            rc::panic("fan-out member %zu diverged from its independent "
                      "run; the speedup would be meaningless",
                      j);
    }

    const double indepSimsPerSec =
        indepSec > 0.0 ? static_cast<double>(fanRuns) / indepSec : 0.0;
    const double fanSimsPerSec =
        fanSec > 0.0 ? static_cast<double>(fanRuns) / fanSec : 0.0;
    const double fanSpeedup =
        fanSec > 0.0 ? indepSec / fanSec : 0.0;

    // --- Feed-cache measurement: the identical sweep once more through
    // the persistent feed cache.  Cold pays the miss path in full
    // (front-end simulation in capture mode, blob serialization, fsync,
    // rename); warm pays the hit path (mmap + validation + SLLC-only
    // replay).  Both passes are digest-checked against the independent
    // runs, so the speedup is over bit-identical results.
    const std::string feedDir = "feedcache-kernel.tmp";
    removeFeedDir(feedDir); // stale leftovers of a killed run
    const auto sweepDigests = [&](FanoutCmp &f, const char *pass) {
        for (std::size_t j = 0; j < fanRuns; ++j) {
            std::ostringstream os;
            f.member(j).llc().stats().dumpJson(os);
            if (fnv1a(os.str()) != indepDigests[j])
                rc::panic("feed-cache %s member %zu diverged from its "
                          "independent run; the speedup would be "
                          "meaningless", pass, j);
        }
    };
    const FeedKey feedKey = feedKeyOf(sweep.front(), fanMix, opt.seed,
                                      opt.scale, opt.warmup, opt.measure);
    double feedColdSec = 0.0, feedWarmSec = 0.0;
    {
        const std::uint64_t c0 = tracer.hostNowMicros();
        auto fc = FeedCache::open(feedDir);
        if (fc->lookup(feedKey))
            rc::panic("feed-cache scratch dir '%s' was already warm",
                      feedDir.c_str());
        FanoutCmp cold(sweep,
                       [&fanMix, &opt] {
                           return buildMixStreams(fanMix, opt.seed,
                                                  opt.scale);
                       },
                       nullptr, /*capture=*/true);
        cold.run(opt.warmup);
        cold.beginMeasurement();
        cold.run(opt.measure);
        fc->store(feedKey, cold.sharedFeed());
        const std::uint64_t c1 = tracer.hostNowMicros();
        tracer.recordHost("kernel.feedcache.cold", 0, c1 - c0);
        feedColdSec = static_cast<double>(c1 - c0) * 1e-6;
        sweepDigests(cold, "cold");
    }
    {
        const std::uint64_t w0 = tracer.hostNowMicros();
        auto fc = FeedCache::open(feedDir);
        const std::shared_ptr<const FeedBlob> blob = fc->lookup(feedKey);
        if (!blob)
            rc::panic("feed-cache warm lookup missed the blob the cold "
                      "pass just stored");
        FanoutCmp warm(sweep,
                       [&fanMix, &opt] {
                           return buildMixStreams(fanMix, opt.seed,
                                                  opt.scale);
                       },
                       blob);
        warm.run(opt.warmup);
        warm.beginMeasurement();
        warm.run(opt.measure);
        const std::uint64_t w1 = tracer.hostNowMicros();
        tracer.recordHost("kernel.feedcache.warm", 0, w1 - w0);
        feedWarmSec = static_cast<double>(w1 - w0) * 1e-6;
        sweepDigests(warm, "warm");
    }
    removeFeedDir(feedDir);

    const double feedColdSimsPerSec =
        feedColdSec > 0.0 ? static_cast<double>(fanRuns) / feedColdSec
                          : 0.0;
    const double feedWarmSimsPerSec =
        feedWarmSec > 0.0 ? static_cast<double>(fanRuns) / feedWarmSec
                          : 0.0;
    const double feedSpeedup =
        feedWarmSec > 0.0 ? feedColdSec / feedWarmSec : 0.0;

    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"micro_kernel\",\n"
        "  \"runs\": %zu,\n"
        "  \"warmup_cycles\": %" PRIu64 ",\n"
        "  \"measure_cycles\": %" PRIu64 ",\n"
        "  \"scale\": %u,\n"
        "  \"accesses\": %" PRIu64 ",\n"
        "  \"serial_sims_per_sec\": %.4f,\n"
        "  \"accesses_per_sec\": %.1f,\n"
        "  \"stats_digest\": \"%016" PRIx64 "\",\n"
        "  \"fanout_runs\": %zu,\n"
        "  \"independent_sims_per_sec\": %.4f,\n"
        "  \"fanout_sims_per_sec\": %.4f,\n"
        "  \"fanout_speedup\": %.3f,\n"
        "  \"feedcache_cold_sims_per_sec\": %.4f,\n"
        "  \"feedcache_warm_sims_per_sec\": %.4f,\n"
        "  \"feedcache_speedup\": %.3f,\n"
        "  \"phases\": {\n"
        "    \"build_seconds\": %.3f,\n"
        "    \"warmup_seconds\": %.3f,\n"
        "    \"measure_seconds\": %.3f,\n"
        "    \"independent_seconds\": %.3f,\n"
        "    \"fanout_seconds\": %.3f,\n"
        "    \"feedcache_cold_seconds\": %.3f,\n"
        "    \"feedcache_warm_seconds\": %.3f\n"
        "  }\n"
        "}\n",
        runs, static_cast<std::uint64_t>(opt.warmup),
        static_cast<std::uint64_t>(opt.measure), opt.scale, accesses,
        simsPerSec, accPerSec, digest, fanRuns, indepSimsPerSec,
        fanSimsPerSec, fanSpeedup, feedColdSimsPerSec,
        feedWarmSimsPerSec, feedSpeedup, buildSec, warmupSec, measureSec,
        indepSec, fanSec, feedColdSec, feedWarmSec);

    std::FILE *f = std::fopen("BENCH_kernel.json", "w");
    if (!f)
        rc::panic("cannot write BENCH_kernel.json");
    std::fwrite(buf, 1, std::strlen(buf), f);
    std::fclose(f);
    std::fputs(buf, stdout);

    if (!baselinePath.empty()) {
        const BaselineRecord base = readBaseline(baselinePath);
        bool failed = false;
        const auto gate = [&](const char *what, double measured,
                              double recorded) {
            if (recorded <= 0.0)
                return; // baseline predates this metric
            const double floor = recorded * (1.0 - tolerance);
            std::printf("gate: %s %.4f sims/sec vs baseline %.4f "
                        "(floor %.4f, tolerance %.0f%%)\n",
                        what, measured, recorded, floor,
                        tolerance * 100.0);
            if (measured < floor) {
                std::fprintf(stderr,
                             "FAIL: %s sims/sec regressed more than "
                             "%.0f%% below the recorded baseline\n",
                             what, tolerance * 100.0);
                failed = true;
            }
        };
        gate("serial", simsPerSec, base.serialSimsPerSec);
        gate("fanout", fanSimsPerSec, base.fanoutSimsPerSec);
        gate("feedcache warm", feedWarmSimsPerSec,
             base.feedWarmSimsPerSec);
        // The speedup ratio gates too: warm replay regressing toward
        // cold cost is a feed-cache regression even if absolute sims/sec
        // kept up with a faster machine.
        if (base.feedSpeedup > 0.0) {
            const double floor = base.feedSpeedup * (1.0 - tolerance);
            std::printf("gate: feedcache speedup %.3fx vs baseline "
                        "%.3fx (floor %.3fx, tolerance %.0f%%)\n",
                        feedSpeedup, base.feedSpeedup, floor,
                        tolerance * 100.0);
            if (feedSpeedup < floor) {
                std::fprintf(stderr,
                             "FAIL: feedcache_speedup regressed more "
                             "than %.0f%% below the recorded baseline\n",
                             tolerance * 100.0);
                failed = true;
            }
        }
        if (failed)
            return 2;
    }
    return 0;
}
