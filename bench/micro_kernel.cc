/**
 * @file
 * Kernel micro-benchmark: serial hot-loop throughput on a
 * table5_mpki-shaped workload (homogeneous 8-core mixes on the 8 MB LRU
 * baseline), bypassing the sweep machinery so the number isolates the
 * simulation kernel itself: reference generation, private lookups, SLLC
 * dispatch and the DRAM model.
 *
 * Writes BENCH_kernel.json:
 *   serial_sims_per_sec   completed runs / simulated wall seconds
 *   accesses_per_sec      completed core references / simulated seconds
 *   phases                per-phase wall-second breakdown (build,
 *                         warmup, measure), mirrored on the EventTracer
 *                         host track ("kernel.build" / "kernel.warmup" /
 *                         "kernel.measure")
 *   stats_digest          FNV-1a over every run's full LLC stats JSON —
 *                         identical across kernel refactors iff the
 *                         stats are bit-identical
 *
 * Extra flags (on top of the common harness set):
 *   --baseline=FILE   prior BENCH_kernel.json to gate against
 *   --tolerance=F     allowed fractional drop vs baseline (default 0.20)
 * With --baseline, exits 2 when serial sims/sec lands below
 * baseline * (1 - tolerance); CI points this at the repo-recorded
 * record so kernel regressions fail the perf-smoke job.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness.hh"
#include "sim/system_config.hh"
#include "telemetry/trace_event.hh"
#include "workloads/mixes.hh"

namespace
{

using namespace rc;

/** Homogeneous-mix applications; a spread of table5_mpki behaviors. */
const char *const kApps[] = {
    "mcf", "libquantum", "gcc", "lbm", "omnetpp", "namd", "sphinx3",
    "hmmer",
};

/** FNV-1a 64-bit. */
std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = 0xcbf29ce484222325ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** serial_sims_per_sec recorded in a prior BENCH_kernel.json. */
double
readBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        rc::panic("cannot read baseline record '%s'", path.c_str());
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const char *key = "\"serial_sims_per_sec\":";
    const std::size_t pos = text.find(key);
    if (pos == std::string::npos)
        rc::panic("'%s' carries no serial_sims_per_sec field",
                  path.c_str());
    return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rc;

    // Strip the bench-local flags before the common parser sees them.
    std::string baselinePath;
    double tolerance = 0.20;
    std::vector<char *> rest;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baselinePath = argv[i] + 11;
        else if (std::strncmp(argv[i], "--tolerance=", 12) == 0)
            tolerance = std::strtod(argv[i] + 12, nullptr);
        else
            rest.push_back(argv[i]);
    }

    const auto opt = bench::initBench(
        static_cast<int>(rest.size()), rest.data(),
        "Kernel throughput: serial sims/sec on the table5 workload",
        "hot-path changes keep stats bit-identical (stats_digest) while "
        "serial sims/sec tracks the BENCH_kernel.json trajectory");

    EventTracer tracer;
    double buildSec = 0.0, warmupSec = 0.0, measureSec = 0.0;
    std::uint64_t accesses = 0;
    std::uint64_t digest = 0xcbf29ce484222325ull;
    const std::size_t runs = std::size(kApps);

    for (std::size_t i = 0; i < runs; ++i) {
        Mix mix;
        for (int c = 0; c < 8; ++c)
            mix.apps.push_back(kApps[i]);
        SystemConfig cfg = baselineSystem(opt.scale);
        cfg.seed = opt.seed;

        const std::uint64_t t0 = tracer.hostNowMicros();
        Cmp sim(cfg, buildMixStreams(mix, opt.seed, opt.scale));
        const std::uint64_t t1 = tracer.hostNowMicros();
        tracer.recordHost("kernel.build", 0, t1 - t0);
        sim.run(opt.warmup);
        const std::uint64_t t2 = tracer.hostNowMicros();
        tracer.recordHost("kernel.warmup", 0, t2 - t1);
        sim.beginMeasurement();
        sim.run(opt.measure);
        const std::uint64_t t3 = tracer.hostNowMicros();
        tracer.recordHost("kernel.measure", 0, t3 - t2);

        buildSec += static_cast<double>(t1 - t0) * 1e-6;
        warmupSec += static_cast<double>(t2 - t1) * 1e-6;
        measureSec += static_cast<double>(t3 - t2) * 1e-6;
        accesses += sim.referencesProcessed();

        std::ostringstream os;
        sim.llc().stats().dumpJson(os);
        digest = fnv1a(os.str(), digest);
    }

    const double simSec = warmupSec + measureSec;
    const double simsPerSec =
        simSec > 0.0 ? static_cast<double>(runs) / simSec : 0.0;
    const double accPerSec =
        simSec > 0.0 ? static_cast<double>(accesses) / simSec : 0.0;

    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"micro_kernel\",\n"
        "  \"runs\": %zu,\n"
        "  \"warmup_cycles\": %" PRIu64 ",\n"
        "  \"measure_cycles\": %" PRIu64 ",\n"
        "  \"scale\": %u,\n"
        "  \"accesses\": %" PRIu64 ",\n"
        "  \"serial_sims_per_sec\": %.4f,\n"
        "  \"accesses_per_sec\": %.1f,\n"
        "  \"stats_digest\": \"%016" PRIx64 "\",\n"
        "  \"phases\": {\n"
        "    \"build_seconds\": %.3f,\n"
        "    \"warmup_seconds\": %.3f,\n"
        "    \"measure_seconds\": %.3f\n"
        "  }\n"
        "}\n",
        runs, static_cast<std::uint64_t>(opt.warmup),
        static_cast<std::uint64_t>(opt.measure), opt.scale, accesses,
        simsPerSec, accPerSec, digest, buildSec, warmupSec, measureSec);

    std::FILE *f = std::fopen("BENCH_kernel.json", "w");
    if (!f)
        rc::panic("cannot write BENCH_kernel.json");
    std::fwrite(buf, 1, std::strlen(buf), f);
    std::fclose(f);
    std::fputs(buf, stdout);

    if (!baselinePath.empty()) {
        const double base = readBaseline(baselinePath);
        const double floor = base * (1.0 - tolerance);
        std::printf("gate: %.4f sims/sec vs baseline %.4f "
                    "(floor %.4f, tolerance %.0f%%)\n",
                    simsPerSec, base, floor, tolerance * 100.0);
        if (simsPerSec < floor) {
            std::fprintf(stderr,
                         "FAIL: serial sims/sec regressed more than "
                         "%.0f%% below the recorded baseline\n",
                         tolerance * 100.0);
            return 2;
        }
    }
    return 0;
}
