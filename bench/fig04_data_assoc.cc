/**
 * @file
 * Figure 4 reproduction: average speedup vs the 8 MB LRU baseline for
 * reuse caches with an 8 MBeq tag array, sweeping data-array size
 * (4, 2, 1, 0.5 MB) and associativity (16, 32, 64, 128, FA).
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 4: data array size and associativity (8 MBeq tags)",
        "performance varies little with associativity (FA best by <=1%); "
        "RC-8/2 beats baseline by ~2.4%, RC-8/1 slightly below (-0.5%)");

    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const auto base =
        bench::runBaselineOverMixes(bench::baselineFor(opt), mixes, opt);

    Table t("Average speedup over conv-8MB-LRU");
    t.header({"config", "16-way", "32-way", "64-way", "128-way", "FA"});
    for (double data_mb : {4.0, 2.0, 1.0, 0.5}) {
        std::vector<std::string> row;
        char name[32];
        std::snprintf(name, sizeof(name), "RC-8/%g", data_mb);
        row.push_back(name);
        for (std::uint32_t ways : {16u, 32u, 64u, 128u, 0u}) {
            const SystemConfig sys =
                reuseSystem(8, data_mb, ways, opt.scale);
            const auto s = bench::compareAgainst(sys, mixes, base, opt);
            row.push_back(fmtDouble(s.mean));
            std::cout << "  " << name << " "
                      << (ways ? std::to_string(ways) + "-way" : "FA")
                      << ": " << fmtDouble(s.mean) << "\n" << std::flush;
        }
        t.row(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\npaper reference (FA column): RC-8/4 ~1.056, "
                 "RC-8/2 ~1.024, RC-8/1 ~0.995, RC-8/0.5 lower; "
                 "16-way vs FA differs by -0.1%..+1%\n";
    return 0;
}
