/**
 * @file
 * Table 3 reproduction: relative access-latency variation of reuse
 * caches with respect to the conventional 8 MB cache, from the
 * CACTI-lite surrogate (paper: CACTI 6.5 at 32 nm, serial tag+data).
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "model/latency_model.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Table 3: access latency",
        "RC-8/8: tag +36%, data same, total +10%; "
        "RC-8/4: tag +36%, data -16%, total -3%");

    constexpr std::uint64_t MiB = 1ull << 20;
    const LatencyEstimate conv = conventionalLatency(8 * MiB, 16);

    Table t("Table 3: latency vs conventional 8 MB (4 banks of 2 MB)");
    t.header({"Org.", "Tag acc.", "Data acc.", "Total acc."});
    auto pct = [](double rel) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%+.0f%%", rel * 100.0);
        return std::string(buf);
    };
    for (double data_mb : {8.0, 4.0, 2.0, 1.0}) {
        const LatencyEstimate rc = reuseLatency(
            8 * MiB, 16, static_cast<std::uint64_t>(data_mb * MiB), 0);
        char name[32];
        std::snprintf(name, sizeof(name), "RC-8/%g", data_mb);
        t.row({name, pct(relativeChange(rc.tag, conv.tag)),
               pct(relativeChange(rc.data, conv.data)),
               pct(relativeChange(rc.total, conv.total))});
    }
    t.print(std::cout);

    std::cout << "\npaper reference: RC-8/8 +36% / same / +10%; "
                 "RC-8/4 +36% / -16% / -3%\n"
                 "(data:tag latency ratio at 8 MB = "
              << fmtDouble(conv.data / conv.tag, 2)
              << ", paper says 'roughly three times')\n";
    return 0;
}
