/**
 * @file
 * Figure 1b reproduction: distribution of hits among line generations
 * loaded into the LRU SLLC (200 groups of 0.5% each, sorted by hits).
 */

#include <cstdio>

#include "analysis/hitdist.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 1b: hits per line generation (example workload, 8MB LRU)",
        "0.5% of loaded lines receive 47% of hits (avg 11.5 hits/line); "
        "only ~5% of loaded lines are ever hit");

    GenerationTracker tracker;
    bench::runMix(bench::baselineFor(opt), exampleMix(), opt, &tracker);
    const HitDistribution d = hitDistribution(tracker.records(), 200);

    std::printf("\nline generations: %llu, total hits: %llu\n",
                static_cast<unsigned long long>(d.generations),
                static_cast<unsigned long long>(d.totalHits));
    std::printf("useful generations (>=1 hit): %.1f%% (paper ~5%%)\n",
                d.usefulFraction * 100.0);
    std::printf("top 0.5%% group: %.1f%% of hits, avg %.1f hits/line "
                "(paper: 47%%, 11.5)\n\n",
                d.groups.empty() ? 0.0 : d.groups[0].hitShare * 100.0,
                d.groups.empty() ? 0.0 : d.groups[0].avgHits);

    std::printf("%-8s %-12s %-14s %s\n", "group", "hit share",
                "cum. share", "avg hits/line");
    double cum = 0.0;
    for (std::size_t g = 0; g < d.groups.size(); ++g) {
        cum += d.groups[g].hitShare;
        // Print the first 15 groups and then every 20th: the tail is
        // zeros (dead lines).
        if (g < 15 || g % 20 == 0) {
            std::printf("%-8zu %10.2f%% %12.2f%% %12.2f\n", g + 1,
                        d.groups[g].hitShare * 100.0, cum * 100.0,
                        d.groups[g].avgHits);
        }
    }
    return 0;
}
