/**
 * @file
 * google-benchmark micro-benchmarks of the core structures: protocol
 * transitions, replacement-policy victim selection, tag/data array
 * operations, DRAM access, and end-to-end simulator throughput.
 */

#include <benchmark/benchmark.h>

#include "cache/conventional_llc.hh"
#include "cache/policies.hh"
#include "coherence/protocol.hh"
#include "reuse/reuse_cache.hh"
#include "sim/cmp.hh"
#include "workloads/generator.hh"
#include "workloads/mixes.hh"

namespace
{

using namespace rc;

void
BM_ProtocolTransition(benchmark::State &state)
{
    std::uint32_t i = 0;
    const LlcState states[] = {LlcState::I, LlcState::TO, LlcState::S,
                               LlcState::M};
    const ProtoEvent events[] = {ProtoEvent::GETS, ProtoEvent::GETX,
                                 ProtoEvent::UPG, ProtoEvent::PUTS,
                                 ProtoEvent::PUTX};
    for (auto _ : state) {
        ProtoInput in{states[i % 4], events[i % 5], (i & 8) != 0, true};
        benchmark::DoNotOptimize(protocolTransition(in));
        ++i;
    }
}
BENCHMARK(BM_ProtocolTransition);

template <ReplKind kind>
void
BM_VictimSelection(benchmark::State &state)
{
    auto policy = makeReplacement(kind, 1024, 16, 8, 1);
    Rng rng(7);
    for (std::uint64_t s = 0; s < 1024; ++s) {
        for (std::uint32_t w = 0; w < 16; ++w)
            policy->onFill(s, w, ReplAccess{});
    }
    for (auto _ : state) {
        const std::uint64_t set = rng.below(1024);
        const std::uint32_t v = policy->victim(set, VictimQuery{});
        policy->onFill(set, v, ReplAccess{});
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_VictimSelection<ReplKind::LRU>)->Name("BM_Victim_LRU");
BENCHMARK(BM_VictimSelection<ReplKind::NRU>)->Name("BM_Victim_NRU");
BENCHMARK(BM_VictimSelection<ReplKind::NRR>)->Name("BM_Victim_NRR");
BENCHMARK(BM_VictimSelection<ReplKind::DRRIP>)->Name("BM_Victim_DRRIP");

void
BM_ClockFullyAssociative(benchmark::State &state)
{
    // The paper's FA data array: one set, thousands of ways, Clock.
    const auto ways = static_cast<std::uint32_t>(state.range(0));
    ClockPolicy policy(1, ways);
    Rng rng(7);
    for (std::uint32_t w = 0; w < ways; ++w)
        policy.onFill(0, w, ReplAccess{});
    for (auto _ : state) {
        const std::uint32_t v = policy.victim(0, VictimQuery{});
        policy.onFill(0, v, ReplAccess{});
        if (rng.chance(0.5))
            policy.onHit(0, static_cast<std::uint32_t>(rng.below(ways)),
                         ReplAccess{});
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_ClockFullyAssociative)->Arg(2048)->Arg(16384);

class NullRecaller : public RecallHandler
{
  public:
    bool recall(Addr, std::uint32_t) override { return false; }
    bool downgrade(Addr, std::uint32_t) override { return false; }
};

void
BM_ConventionalLlcRequest(benchmark::State &state)
{
    MemCtrl mem(MemCtrlConfig{});
    ConvLlcConfig cfg;
    cfg.capacityBytes = 1ull << 20;
    ConventionalLlc llc(cfg, mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr line = rng.below(1 << 16) * lineBytes;
        benchmark::DoNotOptimize(llc.request(
            LlcRequest{line, static_cast<CoreId>(rng.below(8)),
                       ProtoEvent::GETS, now += 3}));
    }
}
BENCHMARK(BM_ConventionalLlcRequest);

void
BM_ReuseCacheRequest(benchmark::State &state)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg =
        ReuseCacheConfig::standard(1ull << 20, 128 * 1024, 0);
    ReuseCache llc(cfg, mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr line = rng.below(1 << 16) * lineBytes;
        benchmark::DoNotOptimize(llc.request(
            LlcRequest{line, static_cast<CoreId>(rng.below(8)),
                       ProtoEvent::GETS, now += 3}));
    }
}
BENCHMARK(BM_ReuseCacheRequest);

void
BM_DramAccess(benchmark::State &state)
{
    DramChannel ch(DramConfig{}, "bench");
    Rng rng(5);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ch.access(rng.below(1 << 24) * lineBytes, now += 7, false));
    }
}
BENCHMARK(BM_DramAccess);

void
BM_SyntheticStream(benchmark::State &state)
{
    const AppProfile *app = findProfile("mcf");
    SyntheticStream stream(*app, 0, 42, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(stream.next());
}
BENCHMARK(BM_SyntheticStream);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    // Simulated cycles per wall-second for the full 8-core system.
    for (auto _ : state) {
        Cmp cmp(baselineSystem(8), buildMixStreams(exampleMix(), 42, 8));
        cmp.run(100'000);
        benchmark::DoNotOptimize(cmp.aggregateIpc());
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

} // namespace

