/**
 * @file
 * Table 2 reproduction: hardware cost in bits of the conventional 8 MB
 * cache vs RC-4/1 with fully-associative and 16-way data arrays.
 * Pure arithmetic - this bench matches the paper exactly.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "model/cost_model.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Table 2: hardware cost",
        "conv 8MB = 69888 Kbits; RC-4/1 FA = 11680 (16.7%); "
        "RC-4/1 16-way = 10880 (15.6%)");

    constexpr std::uint64_t MiB = 1ull << 20;
    const CacheCost conv = conventionalCost(8 * MiB, 16, 8, ReplKind::NRU);
    const CacheCost fa = reuseCost(4 * MiB, 16, 1 * MiB, 0);
    const CacheCost sa = reuseCost(4 * MiB, 16, 1 * MiB, 16);

    Table t("Table 2: per-entry bit breakdown and total storage");
    t.header({"component", "Conv. 8MB 16-way", "RC-4/1 FA",
              "RC-4/1 16-way"});
    auto u32 = [](std::uint32_t v) { return std::to_string(v); };
    t.row({"Tag", u32(conv.tagFieldBits), u32(fa.tagFieldBits),
           u32(sa.tagFieldBits)});
    t.row({"Coherence", u32(conv.coherenceBits), u32(fa.coherenceBits),
           u32(sa.coherenceBits)});
    t.row({"Full-map vector", u32(conv.presenceBits), u32(fa.presenceBits),
           u32(sa.presenceBits)});
    t.row({"Replacement", u32(conv.replacementBits),
           u32(fa.replacementBits), u32(sa.replacementBits)});
    t.row({"Fwd. pointer", "-", u32(fa.fwdPointerBits),
           u32(sa.fwdPointerBits)});
    t.row({"Tot. tag entry (bits)", u32(conv.tag.bitsPerEntry),
           u32(fa.tag.bitsPerEntry), u32(sa.tag.bitsPerEntry)});
    t.row({"Data", "512", "512", "512"});
    t.row({"Valid", "-", "1", "1"});
    t.row({"Replacement (data)", "-", "1", "1"});
    t.row({"Reverse pointer", "-", u32(fa.revPointerBits),
           u32(sa.revPointerBits)});
    t.row({"Tot. data entry (bits)", u32(conv.data.bitsPerEntry),
           u32(fa.data.bitsPerEntry), u32(sa.data.bitsPerEntry)});
    t.row({"Tag array (Kbits)",
           fmtInt(conv.tag.totalBits() / 1024),
           fmtInt(fa.tag.totalBits() / 1024),
           fmtInt(sa.tag.totalBits() / 1024)});
    t.row({"Data array (Kbits)",
           fmtInt(conv.data.totalBits() / 1024),
           fmtInt(fa.data.totalBits() / 1024),
           fmtInt(sa.data.totalBits() / 1024)});
    t.row({"Total size (Kbits)",
           fmtInt(static_cast<std::uint64_t>(conv.totalKbits())),
           fmtInt(static_cast<std::uint64_t>(fa.totalKbits())),
           fmtInt(static_cast<std::uint64_t>(sa.totalKbits()))});
    t.row({"Reduction", "-",
           fmtPercent(1.0 - fa.totalKbits() / conv.totalKbits()),
           fmtPercent(1.0 - sa.totalKbits() / conv.totalKbits())});
    t.print(std::cout);

    std::cout << "\npaper reference: 69888 / 11680 / 10880 Kbits, "
                 "reductions 83.3% / 84.4%\n";
    std::cout << "storage fraction of RC-4/1 (headline): "
              << fmtPercent(fa.totalKbits() / conv.totalKbits())
              << " (paper: 16.7%)\n";
    return 0;
}
