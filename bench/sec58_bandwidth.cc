/**
 * @file
 * Section 5.8 reproduction: sensitivity to memory bandwidth.  Repeats
 * the baseline and RC-4/1 comparisons with 2 and 4 DDR3 channels; the
 * paper observes <1% performance variation.
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Section 5.8: higher memory bandwidth",
        "with 2 and 4 memory channels, system performance varies by "
        "less than 1% for both organizations");

    const auto mixes = makeMixes(opt.mixCount, 8, 7);

    Table t("Aggregate IPC relative to the same organization with "
            "1 channel");
    t.header({"organization", "1 ch", "2 ch", "4 ch"});

    struct Org
    {
        std::string name;
        SystemConfig sys;
    };
    const SystemConfig conv = bench::baselineFor(opt);
    Org orgs[] = {
        {std::string("conv-8MB-") + toString(conv.conv.repl), conv},
        {"RC-4/1", reuseSystem(4, 1, 0, opt.scale)},
    };
    for (Org &org : orgs) {
        std::vector<double> means;
        for (std::uint32_t channels : {1u, 2u, 4u}) {
            SystemConfig sys = org.sys;
            sys.memory.numChannels = channels;
            Accum acc;
            for (const Mix &mix : mixes)
                acc.add(bench::runMix(sys, mix, opt).aggregateIpc);
            means.push_back(acc.mean());
            std::cout << "  " << org.name << " x" << channels
                      << " channels done\n" << std::flush;
        }
        t.row({org.name, "1.000", fmtDouble(means[1] / means[0]),
               fmtDouble(means[2] / means[0])});
    }
    t.print(std::cout);

    std::cout << "\npaper reference: <1% variation with extra channels "
                 "(no significant memory-controller contention)\n";
    return 0;
}
