/**
 * @file
 * Table 6 reproduction: mean and minimum percentage of lines never
 * entering the data array, relative to tags entered in the tag array,
 * for the selected reuse cache configurations.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Table 6: lines not entered in the data array",
        "RC-8/4 discards 93% on average, RC-4/1 95.4%; even the most "
        "demanding workload discards >80% (conv: 0%)");

    const auto mixes = makeMixes(opt.mixCount, 8, 7);

    struct Cfg
    {
        const char *name;
        double tag, data;
        double paperAvg;
        double paperMin;
    };
    const Cfg cfgs[] = {
        {"RC-8/4", 8, 4, 0.93, 0.81},
        {"RC-8/2", 8, 2, 0.93, 0.81},
        {"RC-4/1", 4, 1, 0.954, 0.89},
        {"RC-4/0.5", 4, 0.5, 0.96, 0.89},
    };

    Table t("Percentage of tag generations never entering the data array");
    t.header({"config", "avg", "min", "paper avg", "paper min",
              "reloaded (avg)"});
    for (const Cfg &cfg : cfgs) {
        Accum acc;
        for (const Mix &mix : mixes) {
            const auto res = bench::runMix(
                reuseSystem(cfg.tag, cfg.data, 0, opt.scale), mix, opt);
            acc.add(res.fracNeverEnteredData);
        }
        t.row({cfg.name, fmtPercent(acc.mean()), fmtPercent(acc.min()),
               fmtPercent(cfg.paperAvg), fmtPercent(cfg.paperMin),
               fmtPercent(1.0 - acc.mean())});
        std::cout << "  " << cfg.name << " done\n" << std::flush;
    }
    t.row({"Conv.", "0%", "0%", "0%", "0%", "-"});
    t.print(std::cout);

    std::cout << "\n(the 'reloaded' column is Section 5.3's downside: "
                 "that fraction of data lines pays the main-memory cost "
                 "twice)\n";
    return 0;
}
