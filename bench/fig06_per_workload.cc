/**
 * @file
 * Figure 6 reproduction: per-workload speedups of the selected reuse
 * cache configurations (RC-8/4, RC-8/2, RC-4/1, RC-4/0.5), each sorted
 * ascending as in the paper's plots.
 */

#include <algorithm>
#include <cstdio>

#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 6: per-workload speedups of the selected configurations",
        "RC-8/4 beats the baseline on 99/100 workloads; RC-4/1 wins on "
        "64/100 with range 0.82..1.14");

    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const auto base =
        bench::runBaselineOverMixes(bench::baselineFor(opt), mixes, opt);

    struct Cfg
    {
        const char *name;
        double tag, data;
    };
    const Cfg cfgs[] = {
        {"RC-8/4", 8, 4}, {"RC-8/2", 8, 2}, {"RC-4/1", 4, 1},
        {"RC-4/0.5", 4, 0.5},
    };

    for (const Cfg &cfg : cfgs) {
        auto s = bench::compareAgainst(
            reuseSystem(cfg.tag, cfg.data, 0, opt.scale), mixes, base,
            opt);
        std::sort(s.perMix.begin(), s.perMix.end());
        std::uint32_t wins = 0;
        for (double v : s.perMix)
            wins += v >= 1.0;
        std::printf("\n%s: mean %.3f, range %.3f..%.3f, beats baseline "
                    "on %u/%zu workloads\n",
                    cfg.name, s.mean, s.min, s.max, wins,
                    s.perMix.size());
        std::printf("sorted speedups: ");
        for (std::size_t i = 0; i < s.perMix.size(); ++i)
            std::printf("%.3f%s", s.perMix[i],
                        (i + 1) % 10 == 0 ? "\n                 " : " ");
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
