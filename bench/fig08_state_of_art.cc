/**
 * @file
 * Figure 8 reproduction: reuse caches vs conventional caches running
 * TA-DRRIP and NRR, with the hardware storage of every configuration.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "model/cost_model.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 8: comparison with TA-DRRIP and NRR",
        "RC-8/4 (40448 Kbits) beats DRRIP-8MB (70016 Kbits) by ~2%; "
        "RC-16/8 edges DRRIP/NRR-16MB with 41% less storage; RC-4/0.5 "
        "matches DRRIP-4MB at 80% less storage");

    constexpr std::uint64_t MiB = 1ull << 20;
    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const auto base =
        bench::runBaselineOverMixes(bench::baselineFor(opt), mixes, opt);

    Table t("Speedup over conv-8MB-LRU and hardware storage");
    t.header({"config", "speedup", "storage (Kbits)", "paper speedup"});

    struct ConvCfg
    {
        const char *name;
        double mb;
        ReplKind repl;
        double paper;
    };
    const ConvCfg convs[] = {
        {"DRRIP-16MB", 16, ReplKind::DRRIP, 1.094},
        {"NRR-16MB", 16, ReplKind::NRR, 1.094},
        {"DRRIP-8MB", 8, ReplKind::DRRIP, 1.037},
        {"NRR-8MB", 8, ReplKind::NRR, 1.037},
        {"DRRIP-4MB", 4, ReplKind::DRRIP, 0.974},
        {"NRR-4MB", 4, ReplKind::NRR, 0.975},
    };
    for (const ConvCfg &c : convs) {
        const auto s = bench::compareAgainst(
            conventionalSystem(c.mb, c.repl, opt.scale), mixes, base, opt);
        const double kbits = conventionalCost(
            static_cast<std::uint64_t>(c.mb * MiB), 16, 8,
            c.repl).totalKbits();
        t.row({c.name, fmtDouble(s.mean),
               fmtInt(static_cast<std::uint64_t>(kbits)),
               fmtDouble(c.paper)});
        std::cout << "  " << c.name << ": " << fmtDouble(s.mean) << "\n"
                  << std::flush;
    }

    struct RcCfg
    {
        const char *name;
        double tag, data;
        double paper;
    };
    const RcCfg rcs[] = {
        {"RC-16/8", 16, 8, 1.099},
        {"RC-8/4", 8, 4, 1.056},
        {"RC-8/2", 8, 2, 1.024},
        {"RC-4/1", 4, 1, 1.004},
        {"RC-4/0.5", 4, 0.5, 0.974},
    };
    for (const RcCfg &c : rcs) {
        const auto s = bench::compareAgainst(
            reuseSystem(c.tag, c.data, 0, opt.scale), mixes, base, opt);
        const double kbits = reuseCost(
            static_cast<std::uint64_t>(c.tag * MiB), 16,
            static_cast<std::uint64_t>(c.data * MiB), 0).totalKbits();
        t.row({c.name, fmtDouble(s.mean),
               fmtInt(static_cast<std::uint64_t>(kbits)),
               fmtDouble(c.paper)});
        std::cout << "  " << c.name << ": " << fmtDouble(s.mean) << "\n"
                  << std::flush;
    }
    t.print(std::cout);

    std::cout << "\npaper storage reference: DRRIP-16MB 140032, NRR-16MB "
                 "139776, DRRIP-8MB 70016, NRR-8MB 69888, DRRIP-4MB "
                 "35008, NRR-4MB 34944; RC-16/8 81024, RC-8/4 40448, "
                 "RC-8/2 23360, RC-4/1 11664, RC-4/0.5 7368 Kbits\n"
                 "(ours differ by <1%: the paper reuses the 8MB 21-bit "
                 "tag field for all sizes, we recompute per geometry)\n";
    return 0;
}
