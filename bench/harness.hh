/**
 * @file
 * Shared benchmark harness: option parsing, simulation runners and
 * speedup aggregation used by every per-figure/per-table bench binary.
 *
 * Common flags (all optional):
 *   --mixes=N     multiprogrammed workloads per experiment (default 5)
 *   --scale=N     capacity divisor, 1 = paper-size caches (default 8)
 *   --warmup=N    warmup cycles (default 3M)
 *   --measure=N   measured cycles (default 12M; the data arrays need
 *                 several fill times to reach steady state)
 *   --seed=N      base RNG seed (default 42)
 *   --jobs=N      concurrent simulations (default: hardware threads;
 *                 1 forces the legacy serial path)
 *   --full        paper-strength settings (100 mixes, longer windows)
 *
 * Independent (SystemConfig × Mix) runs execute on a TaskPool; results
 * land in pre-sized slots keyed by index, so every reported statistic
 * is bit-identical to the serial path regardless of --jobs.  Each
 * binary also drops a BENCH_harness.json throughput record (sims/sec
 * serial-equivalent vs parallel) on exit.
 */

#ifndef RC_BENCH_HARNESS_HH
#define RC_BENCH_HARNESS_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/liveness.hh"
#include "sim/cmp.hh"
#include "workloads/mixes.hh"
#include "workloads/parallel.hh"

namespace rc::bench
{

/** Harness options shared by every bench. */
struct RunOptions
{
    std::uint32_t scale = 8;
    Cycle warmup = 3'000'000;
    Cycle measure = 12'000'000;
    std::uint32_t mixCount = 5;
    std::uint64_t seed = 42;

    /** Sampling period for liveness series (cycles). */
    Cycle samplePeriod = 20'000;

    /** Concurrent simulations; 0 = hardware concurrency, 1 = serial. */
    std::uint32_t jobs = 0;
};

/** Parse the common flags; unknown flags abort with the usage string. */
RunOptions parseArgs(int argc, char **argv);

/** The full usage string printed by --help and on flag errors. */
const char *usageString();

/** Worker count @p opt resolves to (0 → hardware concurrency). */
std::uint32_t effectiveJobs(const RunOptions &opt);

/**
 * Run body(0) .. body(n-1) — one independent simulation each — on
 * opt.jobs pool workers (inline and in order when that resolves to 1).
 * Bodies must write their results into pre-sized slots keyed by index
 * and must not touch shared mutable state; aggregation stays with the
 * caller, after this returns, so output is identical for any job count.
 * Batch wall/cpu time is accumulated into the BENCH_harness.json
 * throughput record written at process exit.
 */
void forEachRun(std::size_t n, const RunOptions &opt,
                const std::function<void(std::size_t)> &body);

/**
 * IPC ratio @p sys_ipc / @p baseline_ipc with the zero-baseline guard
 * in one place (0.0 when the baseline measured no instructions).
 */
double speedupRatio(double sys_ipc, double baseline_ipc);

/** Results of one simulation run. */
struct RunResult
{
    double aggregateIpc = 0.0;
    std::vector<double> coreIpc;
    std::vector<MpkiTriple> mpki;
    double fracNeverEnteredData = -1.0; //!< reuse cache only
    Counter llcAccesses = 0;
    Counter llcMemFetches = 0;
    Counter dramReads = 0;
};

/**
 * Simulate one multiprogrammed mix on one system configuration.
 * @param tracker optional generation tracker attached for the whole run;
 *        the harness finalizes it and reports the measurement window via
 *        win_start/win_end.
 */
RunResult runMix(const SystemConfig &sys, const Mix &mix,
                 const RunOptions &opt,
                 GenerationTracker *tracker = nullptr,
                 Cycle *win_start = nullptr, Cycle *win_end = nullptr);

/** Simulate one parallel application on one system configuration. */
RunResult runParallel(const SystemConfig &sys, const AppProfile &app,
                      const RunOptions &opt);

/**
 * Mean speedup of @p sys over @p baseline across @p mixes
 * (per-mix aggregate-IPC ratios).
 */
struct SpeedupSummary
{
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> perMix; //!< one ratio per mix
};

/** Run both systems over every mix and summarize the ratios. */
SpeedupSummary compareOverMixes(const SystemConfig &sys,
                                const SystemConfig &baseline,
                                const std::vector<Mix> &mixes,
                                const RunOptions &opt);

/**
 * Baseline results cache: benches comparing many configurations against
 * the same baseline reuse one result set.
 */
std::vector<RunResult> runBaselineOverMixes(const SystemConfig &baseline,
                                            const std::vector<Mix> &mixes,
                                            const RunOptions &opt);

/** Speedups of @p sys against precomputed baseline results. */
SpeedupSummary compareAgainst(const SystemConfig &sys,
                              const std::vector<Mix> &mixes,
                              const std::vector<RunResult> &baseline,
                              const RunOptions &opt);

/** Standard experiment preamble: prints what is being reproduced. */
void printHeader(const std::string &artifact, const std::string &claim,
                 const RunOptions &opt);

} // namespace rc::bench

#endif // RC_BENCH_HARNESS_HH
