/**
 * @file
 * Shared benchmark harness: option parsing, simulation runners and
 * speedup aggregation used by every per-figure/per-table bench binary.
 *
 * Common flags (all optional):
 *   --mixes=N     multiprogrammed workloads per experiment (default 5)
 *   --scale=N     capacity divisor, 1 = paper-size caches (default 8)
 *   --warmup=N    warmup cycles (default 3M)
 *   --measure=N   measured cycles (default 12M; the data arrays need
 *                 several fill times to reach steady state)
 *   --seed=N      base RNG seed (default 42)
 *   --policy=NAME restrict/override the replacement policy under test
 *                 (any name in the arena registry; unknown names list
 *                 the spellings with a "did you mean" hint)
 *   --jobs=N      concurrent simulations (default: hardware threads;
 *                 1 forces the legacy serial path)
 *   --check-interval=N  run the integrity checker every N references
 *                 and at end-of-run (0 = off, the default)
 *   --inject=CLASS[@IDX]  poison run IDX (default 0) of each batch with
 *                 one fault of CLASS (tag-state, dir-drop, dir-ghost,
 *                 owner, orphan-data, mshr-leak, repl-meta) after
 *                 warmup — exercises the quarantine path
 *   --checkpoint-interval=N  persist every run's full simulated state
 *                 every N references (needs --sweep-dir or --resume)
 *   --sweep-dir=DIR  journal completed runs and persist results/
 *                 checkpoints under DIR
 *   --resume=DIR  relaunch a killed sweep: skip journaled runs, restore
 *                 in-flight ones from their latest valid checkpoint
 *   --hang-timeout=S  abort + quarantine runs making no forward
 *                 progress for S wall seconds (default 300; 0 = off)
 *   --telemetry-dir=DIR  write per-run telemetry artifacts under DIR
 *   --trace-events  record event traces (Chrome trace_event JSON;
 *                 needs --telemetry-dir)
 *   --sample-interval=N  sample stat deltas every N simulated cycles
 *                 into an epoch CSV (needs --telemetry-dir)
 *   --feed-cache=DIR  persist/replay fan-out front-end record streams
 *                 under DIR (warm hits skip the front end entirely)
 *   --no-feed-cache  force the feed cache off (overrides a bench's
 *                 default-on directory, e.g. arena_tournament's)
 *   --full        paper-strength settings (100 mixes, longer windows)
 *
 * Independent (SystemConfig × Mix) runs execute on a TaskPool; results
 * land in pre-sized slots keyed by index, so every reported statistic
 * is bit-identical to the serial path regardless of --jobs.  Each
 * binary also drops a BENCH_harness.json throughput record (sims/sec
 * serial-equivalent vs parallel, plus per-run wall time and outcome)
 * on exit.
 *
 * Crash isolation: a run that throws SimError (integrity violation,
 * corrupt trace, ...) is retried once and, if it fails again,
 * quarantined — its slot keeps default values, every sibling run
 * completes untouched, and the process exits nonzero at the end.
 */

#ifndef RC_BENCH_HARNESS_HH
#define RC_BENCH_HARNESS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/liveness.hh"
#include "service/run_request.hh"
#include "sim/cmp.hh"
#include "sim/run_result.hh"
#include "workloads/mixes.hh"
#include "workloads/parallel.hh"

namespace rc::bench
{

/** Harness options shared by every bench. */
struct RunOptions
{
    std::uint32_t scale = 8;
    Cycle warmup = 3'000'000;
    Cycle measure = 12'000'000;
    std::uint32_t mixCount = 5;
    std::uint64_t seed = 42;

    /**
     * Replacement-policy selection (--policy=NAME; "" = the bench's
     * default).  parseArgs resolves the name through the arena registry
     * (arena/arena_registry.hh) and stores the canonical spelling, so a
     * non-empty value is always a valid registry name.  Benches whose
     * conventional baseline is a free parameter take it from
     * baselineFor(opt); arena_tournament restricts its field to it;
     * the fixed-matrix figure benches (fig01a/fig07, which sweep
     * policies themselves) ignore it.
     */
    std::string policy;

    /** The ReplKind `policy` resolved to (valid iff policy != ""). */
    ReplKind policyKind = ReplKind::LRU;

    /** Sampling period for liveness series (cycles). */
    Cycle samplePeriod = 20'000;

    /** Concurrent simulations; 0 = hardware concurrency, 1 = serial. */
    std::uint32_t jobs = 0;

    /**
     * Integrity-checker cadence in references (0 = off).  When set,
     * every run walks the whole simulated state every N references and
     * once more at end-of-run; any violation throws SimError and the
     * run is retried/quarantined.
     */
    std::uint64_t checkInterval = 0;

    /**
     * Fault class to inject ("" = none); see --inject above for the
     * spellings.  The fault is applied after warmup of run injectRun.
     */
    std::string injectFault;

    /** Batch-local index of the run to poison. */
    std::size_t injectRun = 0;

    /**
     * Re-inject on the retry attempt too (true models a deterministic
     * corruption: the run stays quarantined; false models a transient
     * one: the retry succeeds and the run reports Retried).
     */
    bool injectOnRetry = true;

    /**
     * Checkpoint cadence in references (0 = off).  When set together
     * with sweepDir, every run persists its full simulated state to
     * `<sweepDir>/ckpt-b<batch>-r<run>.ckpt` every N references, at a
     * quiescent point, so a killed sweep can resume mid-run.  Ignored
     * (with a warning) when a GenerationTracker is attached: observer
     * history is not part of the simulated state.
     */
    std::uint64_t checkpointInterval = 0;

    /**
     * Sweep working directory for the journal, per-run result blobs,
     * checkpoints and hang dumps ("" disables all persistence).
     */
    std::string sweepDir;

    /**
     * Resume mode (--resume=DIR): journaled ok/retried runs are skipped
     * (their results reloaded from the digest-checked result blobs);
     * unjournaled or quarantined runs re-execute, restoring from their
     * latest valid checkpoint when one exists and falling back to a
     * from-scratch run on any snapshot error.
     */
    bool resume = false;

    /**
     * Forward-progress watchdog: a run whose heartbeat (completed
     * references) does not advance for this many wall seconds is
     * cooperatively aborted (SimError(Hang)), state-dumped to
     * `<sweepDir>/hang-b<batch>-r<run>.dump`, and routed into the
     * retry/quarantine path.  0 disables.  Tests constructing
     * RunOptions directly get it off; parseArgs turns it on (300 s)
     * for the bench CLIs.
     */
    double hangTimeout = 0.0;

    /**
     * How many hang-*.dump diagnostics to keep under sweepDir: after a
     * new dump lands, only the newest hangDumpKeep survive (oldest by
     * modification time are deleted).  A sweep that keeps hitting its
     * watchdog across relaunches would otherwise accumulate dumps
     * without bound.  0 keeps everything.
     */
    std::size_t hangDumpKeep = 8;

    /**
     * Test hook simulating a kill -9: the run throws SimError(Snapshot)
     * from its checkpoint hook once this many references completed,
     * right after the checkpoint file landed on disk.  0 disables.
     */
    std::uint64_t crashAfterRefs = 0;

    /**
     * Test hook simulating a livelock: the run with this batch-local
     * index keeps simulating but its watchdog heartbeat never advances,
     * so the monitor must flag it.  SIZE_MAX disables.
     */
    std::size_t livelockRun = SIZE_MAX;

    /**
     * Telemetry output directory ("" = telemetry off).  Each run of
     * each batch writes its artifacts (trace-, epochs-, stats- files)
     * under it, suffixed with the run's (batch, run) tag so --jobs=N
     * sweeps never collide.
     */
    std::string telemetryDir;

    /**
     * Record per-event traces (--trace-events): cache transactions,
     * DRAM accesses and coherence traffic in simulated cycles, harness
     * phases in host time, exported as Chrome trace_event JSON.
     * Requires telemetryDir.
     */
    bool traceEvents = false;

    /**
     * Epoch length for stat-delta sampling in simulated cycles
     * (--sample-interval=N; 0 = off).  Requires telemetryDir.
     */
    Cycle sampleInterval = 0;

    /**
     * Persistent feed-cache directory for fan-out front ends
     * (--feed-cache=DIR; "" = off).  Fan-out jobs look their
     * (front-end config, mix, seed, scale, windows) key up before
     * simulating: a warm hit replays the classified StepRecord streams
     * zero-copy from the mapped blob — no stream generation, no
     * private-hierarchy simulation — and a miss captures the streams
     * and stores them crash-safely for every later run.  Results are
     * bit-identical warm or cold.  An unusable directory warns and
     * falls back to uncached fan-out.
     */
    std::string feedCacheDir;

    /**
     * --no-feed-cache seen: benches that default feedCacheDir on via
     * their initBench tweak (arena_tournament) must leave it off.
     * parseArgs keeps the last of --feed-cache=/--no-feed-cache.
     */
    bool feedCacheDisabled = false;
};

/** How one run of a batch ended. */
enum class RunStatus : std::uint8_t
{
    Ok,          //!< first attempt succeeded
    Retried,     //!< first attempt threw SimError, the retry succeeded
    Quarantined, //!< both attempts threw; the result slot is untouched
};

/** JSON/report spelling: "ok", "retried", "quarantined". */
const char *toString(RunStatus status);

/** Per-run record reported in BENCH_harness.json. */
struct RunOutcome
{
    std::size_t index = 0;      //!< batch-local run index
    RunStatus status = RunStatus::Ok;
    std::uint32_t attempts = 1; //!< 1 normally, 2 after a retry
    double wallSeconds = 0.0;   //!< wall time across all attempts
    std::string error;          //!< last SimError message ("" when Ok)
    bool fromJournal = false;   //!< skipped on resume, result reloaded
};

/**
 * Optional result persistence for forEachRun: save() serializes run
 * i's slot after the body succeeds, load() refills it from a journaled
 * blob on resume.  Runs without a codec always re-execute on resume
 * (deterministic bodies make that equivalent, just slower).
 */
struct ResultCodec
{
    std::function<void(std::size_t, Serializer &)> save;
    std::function<void(std::size_t, Deserializer &)> load;
};

/**
 * Batch-local index of the run the calling thread is executing, or
 * npos outside forEachRun.  runMix uses it to decide whether this run
 * is the --inject target.
 */
std::size_t currentRunIndex();

/** Attempt number (0 = first, 1 = retry) of the calling thread's run. */
std::uint32_t currentAttempt();

/**
 * Watchdog heartbeat slot of the calling thread's run (nullptr when no
 * watchdog is armed).  runMix stores the completed-reference count here
 * via Cmp::setProgressCounter.
 */
std::atomic<std::uint64_t> *currentRunHeartbeat();

/**
 * Watchdog abort flag of the calling thread's run (nullptr when no
 * watchdog is armed); wired into Cmp::setAbortFlag.
 */
const std::atomic<bool> *currentRunAbortFlag();

/**
 * Batch index of the innermost active forEachRun, i.e. how many
 * forEachRun calls this process made before it.  A bench executes the
 * same batch sequence on every launch, so (batch, run) names a run
 * stably across relaunches; npos outside forEachRun.
 */
std::uint64_t currentBatchIndex();

/** Reset the process-global batch counter (tests only). */
void resetSweepBatchesForTest();

/**
 * RAII adoption of an external watchdog: while alive, runs executed on
 * the calling thread publish forward progress into @p heartbeat and
 * honour @p abort, through exactly the wiring forEachRun's own monitor
 * uses.  The sweep daemon arms one per job so its watchdog can abort a
 * hung or deadline-expired simulation; restores the previous wiring on
 * destruction.
 */
/**
 * Delete all but the newest @p keep `hang-*.dump` diagnostics under
 * @p dir (newest by modification time, file name breaking ties).
 * Invoked automatically after every watchdog dump; 0 keeps everything.
 */
void pruneHangDumps(const std::string &dir, std::size_t keep);

class ScopedRunWatch
{
  public:
    ScopedRunWatch(const std::atomic<bool> *abort,
                   std::atomic<std::uint64_t> *heartbeat);
    ~ScopedRunWatch();

    ScopedRunWatch(const ScopedRunWatch &) = delete;
    ScopedRunWatch &operator=(const ScopedRunWatch &) = delete;

  private:
    const std::atomic<bool> *prevAbort;
    std::atomic<std::uint64_t> *prevHeartbeat;
};

/**
 * Execute one service-layer RunRequest with runMix, wiring the daemon's
 * abort flag and heartbeat into the run (ScopedRunWatch).  This is the
 * SimulateFn the rc-daemon/rc-client CLIs and tests hand to the service
 * layer; calling it directly (the client's in-process fallback) yields
 * bit-identical results because runMix is deterministic in
 * (config, mix, seed, scale, windows).
 */
::rc::RunResult simulateRequest(const svc::RunRequest &req,
                                const std::atomic<bool> *abort = nullptr,
                                std::atomic<std::uint64_t> *heartbeat =
                                    nullptr,
                                const std::string &feed_cache_dir = {});

/** Quarantined runs across every batch in this process. */
std::uint64_t quarantinedRunsTotal();

/**
 * Whether the process exits nonzero when any run stayed quarantined
 * (default true; parseArgs installs the exit-code guard).
 */
void setExitOnQuarantine(bool enable);

/** The BENCH_harness.json payload for the batches run so far. */
std::string perfRecordJson();

/** Parse the common flags; unknown flags abort with the usage string. */
RunOptions parseArgs(int argc, char **argv);

/**
 * Standard bench preamble in one call: parse the common flags, apply
 * the bench's option @p tweak (minimum windows, mix-count floors, ...)
 * and print the header naming the reproduced @p artifact and its
 * @p claim.  Every bench main() starts with this.
 */
RunOptions initBench(int argc, char **argv, const std::string &artifact,
                     const std::string &claim,
                     const std::function<void(RunOptions &)> &tweak = {});

/** The full usage string printed by --help and on flag errors. */
const char *usageString();

/** Worker count @p opt resolves to (0 → hardware concurrency). */
std::uint32_t effectiveJobs(const RunOptions &opt);

/**
 * Run body(0) .. body(n-1) — one independent simulation each — on
 * opt.jobs pool workers (inline and in order when that resolves to 1).
 * Bodies must write their results into pre-sized slots keyed by index
 * and must not touch shared mutable state; aggregation stays with the
 * caller, after this returns, so output is identical for any job count.
 * Batch wall/cpu time is accumulated into the BENCH_harness.json
 * throughput record written at process exit.
 *
 * A body that throws SimError is retried once; a second SimError
 * quarantines the run (its slot keeps default values) while every
 * other run completes normally.  Any other exception still propagates.
 *
 * With opt.sweepDir set, every completed run is journaled (fsync'd
 * append) and, when @p codec is given, its result is persisted to a
 * digest-checked blob; with opt.resume also set, journaled ok/retried
 * runs are skipped and their slots refilled from those blobs, so the
 * aggregated output is bit-identical to an uninterrupted sweep.  With
 * opt.hangTimeout > 0 a monitor thread aborts runs whose heartbeat
 * stalls (see RunOptions::hangTimeout).
 * @return one RunOutcome per run, in index order.
 */
std::vector<RunOutcome> forEachRun(
    std::size_t n, const RunOptions &opt,
    const std::function<void(std::size_t)> &body,
    const ResultCodec *codec = nullptr);

/**
 * IPC ratio @p sys_ipc / @p baseline_ipc with the zero-baseline guard
 * in one place (0.0 when the baseline measured no instructions).
 */
double speedupRatio(double sys_ipc, double baseline_ipc);

/**
 * Results of one simulation run.  The struct itself lives in the core
 * library (sim/run_result.hh) so the sweep daemon's result cache and
 * wire protocol exchange exactly the value the harness computes; the
 * alias keeps every bench spelling it rc::bench::RunResult.
 */
using RunResult = ::rc::RunResult;

/**
 * The conventional 8 MB baseline with --policy applied: LRU (the
 * paper's baseline) unless the user picked another registry policy.
 * Benches whose conventional anchor is a free parameter build it from
 * here so --policy=NAME means the same thing everywhere.
 */
SystemConfig baselineFor(const RunOptions &opt);

/**
 * Simulate one multiprogrammed mix on one system configuration.
 * @param tracker optional generation tracker attached for the whole run;
 *        the harness finalizes it and reports the measurement window via
 *        win_start/win_end.
 */
RunResult runMix(const SystemConfig &sys, const Mix &mix,
                 const RunOptions &opt,
                 GenerationTracker *tracker = nullptr,
                 Cycle *win_start = nullptr, Cycle *win_end = nullptr);

/** Simulate one parallel application on one system configuration. */
RunResult runParallel(const SystemConfig &sys, const AppProfile &app,
                      const RunOptions &opt);

/**
 * Mean speedup of @p sys over @p baseline across @p mixes
 * (per-mix aggregate-IPC ratios).
 */
struct SpeedupSummary
{
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> perMix; //!< one ratio per mix
};

/**
 * Simulate one mix on several configurations through ONE front-end
 * pass: the configs must share the private-hierarchy prefix
 * (FanoutCmp::samePrivatePrefix) and the fan-out machinery's
 * preconditions (no prefetching).  Results are bit-identical to
 * per-config runMix calls; the front end (stream generation + private
 * L1/L2 classification) is paid once instead of N times.
 * @return one RunResult per config, in order.
 */
std::vector<RunResult> runMixFanout(const std::vector<SystemConfig> &cfgs,
                                    const Mix &mix, const RunOptions &opt);

/**
 * Sweep @p cfgs x @p mixes, grouping runs by (mix, front-end prefix of
 * the SystemConfig) and dispatching one fan-out job per group instead
 * of one job per run.  Groups ineligible for fan-out (single config,
 * prefetching enabled, fault injection, journaled/resumable sweeps or
 * the crash/livelock test hooks) fall back to independent runMix jobs,
 * so the aggregated results are bit-identical either way — and at any
 * --jobs=N, since each job stays deterministic and independent.
 * @return results[config][mix].
 */
std::vector<std::vector<RunResult>>
runConfigsOverMixes(const std::vector<SystemConfig> &cfgs,
                    const std::vector<Mix> &mixes, const RunOptions &opt);

/**
 * Run both systems over every mix and summarize the ratios.  The two
 * systems share their front end whenever they agree on the private
 * prefix, so the common case (same cores/L1/L2, different SLLC) costs
 * one reference stream instead of two.
 */
SpeedupSummary compareOverMixes(const SystemConfig &sys,
                                const SystemConfig &baseline,
                                const std::vector<Mix> &mixes,
                                const RunOptions &opt);

/**
 * Baseline results cache: benches comparing many configurations against
 * the same baseline reuse one result set.  Results are additionally
 * memoized per (config, mix, deterministic options) within the process,
 * so repeated calls — e.g. several compareOverMixes() against the same
 * baseline — reuse the simulated results instead of re-running them.
 * Memoization is skipped for journaled sweeps and for runs with fault
 * injection or the crash/livelock test hooks.
 */
std::vector<RunResult> runBaselineOverMixes(const SystemConfig &baseline,
                                            const std::vector<Mix> &mixes,
                                            const RunOptions &opt);

/** Drop every memoized baseline result (test isolation). */
void clearBaselineMemoForTest();

/** Speedups of @p sys against precomputed baseline results. */
SpeedupSummary compareAgainst(const SystemConfig &sys,
                              const std::vector<Mix> &mixes,
                              const std::vector<RunResult> &baseline,
                              const RunOptions &opt);

/** Standard experiment preamble: prints what is being reproduced. */
void printHeader(const std::string &artifact, const std::string &claim,
                 const RunOptions &opt);

} // namespace rc::bench

#endif // RC_BENCH_HARNESS_HH
