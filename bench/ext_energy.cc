/**
 * @file
 * Energy extension (not a paper figure): the paper motivates the reuse
 * cache with area AND power savings (Section 1).  This bench combines
 * the bit-count-based energy surrogate with measured SLLC activity to
 * estimate total (dynamic + static) SLLC energy of RC-x/y organizations
 * relative to the conventional 8 MB baseline.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "model/energy_model.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Extension: SLLC energy (leakage + dynamic)",
        "the saved area cuts static power ~5x at RC-4/1; dynamic energy "
        "shifts from the big data array to the tag array");

    constexpr std::uint64_t MiB = 1ull << 20;
    const auto mixes = makeMixes(opt.mixCount, 8, 7);

    auto activity = [&](const bench::RunResult &r,
                        Cycle cycles) -> SllcActivity {
        SllcActivity a;
        a.tagProbes = r.llcAccesses;
        // Approximate data-array activity: everything except the pure
        // tag misses touches the data array (hit, fill or writeback).
        a.dataAccesses = r.llcAccesses - r.llcMemFetches / 2;
        a.windowCycles = cycles;
        return a;
    };

    // Baseline energy per mix.
    const EnergyEstimate conv_e = conventionalEnergy(8 * MiB, 16);
    double conv_energy = 0.0;
    for (const Mix &mix : mixes) {
        const auto r = bench::runMix(bench::baselineFor(opt), mix, opt);
        conv_energy += windowEnergy(conv_e, activity(r, opt.measure));
    }
    std::cout << "  baseline done\n" << std::flush;

    Table t("SLLC energy relative to conv-8MB-LRU "
            "(same workloads, measured activity)");
    t.header({"config", "leakage (rel)", "total energy (rel)"});
    t.row({"conv-8MB", "1.000", "1.000"});

    struct Cfg { const char *name; double tag, data; };
    const Cfg cfgs[] = {{"RC-8/4", 8, 4}, {"RC-8/2", 8, 2},
                        {"RC-4/1", 4, 1}, {"RC-4/0.5", 4, 0.5}};
    for (const Cfg &cfg : cfgs) {
        const EnergyEstimate e = reuseEnergy(
            static_cast<std::uint64_t>(cfg.tag * MiB), 16,
            static_cast<std::uint64_t>(cfg.data * MiB), 0);
        double total = 0.0;
        for (const Mix &mix : mixes) {
            const auto r = bench::runMix(
                reuseSystem(cfg.tag, cfg.data, 0, opt.scale), mix, opt);
            total += windowEnergy(e, activity(r, opt.measure));
        }
        t.row({cfg.name, fmtDouble(e.leakage),
               fmtDouble(total / conv_energy)});
        std::cout << "  " << cfg.name << " done\n" << std::flush;
    }
    t.print(std::cout);

    std::cout << "\n(leakage follows the Table 2 bit counts exactly; an "
                 "LLC is leakage-dominated, so total energy tracks "
                 "storage)\n";
    return 0;
}
