/**
 * @file
 * Figure 11 reproduction: reuse-cache speedups on the five parallel
 * applications (blackscholes, canneal, ferret, fluidanimate, ocean) for
 * data arrays from 4 MB down to 512 KB.
 */

#include <algorithm>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 11: parallel applications",
        "only ferret loses (-1% at RC-8/4 to -11% at RC-8/0.5); canneal "
        "and ocean gain >10% even at RC-8/0.5",
        [](bench::RunOptions &o) {
            // The parallel analogs' reuse detection converges over many
            // sweep generations; give them longer windows than the mix
            // benches.
            o.warmup = std::max<Cycle>(o.warmup, 6'000'000);
            o.measure = std::max<Cycle>(o.measure, 24'000'000);
        });

    Table t("Speedup over conv-8MB-LRU per parallel application");
    t.header({"application", "RC-8/4", "RC-8/2", "RC-8/1", "RC-8/0.5"});

    for (const AppProfile &app : parallelProfiles()) {
        const auto base =
            bench::runParallel(bench::baselineFor(opt), app, opt);
        std::vector<std::string> row{app.name};
        for (double data_mb : {4.0, 2.0, 1.0, 0.5}) {
            const auto res = bench::runParallel(
                reuseSystem(8, data_mb, 0, opt.scale), app, opt);
            row.push_back(fmtDouble(res.aggregateIpc /
                                    base.aggregateIpc));
        }
        t.row(std::move(row));
        std::cout << "  " << app.name << " done\n" << std::flush;
    }
    t.print(std::cout);

    std::cout << "\npaper MPKI reference (baseline SLLC): blackscholes "
                 "4.5, canneal 3.5, ferret 1.3, fluidanimate 1.7, "
                 "ocean 13.4\n";
    return 0;
}
