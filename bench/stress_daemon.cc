/**
 * @file
 * Stress and fault-matrix exercise of the simulation service.
 *
 * Phases (each verified against an in-process oracle with exact bitwise
 * result comparison — the daemon must never return a wrong answer, only
 * a slow or an error one):
 *
 *  1. oracle     simulate the request set directly (the ground truth)
 *  2. cold       every request through the daemon once (all misses)
 *  3. hot        --requests total requests from --threads concurrent
 *                clients, all served from the result cache; the mean
 *                hit must be >= --min-hit-speedup faster than cold
 *  4. arena      tournament-style requests (one per arena replacement
 *                policy on one mix): every digest distinct — the policy
 *                id is part of the canonical request encoding — cold
 *                pass all simulated, repeat pass all content-addressed
 *                cache hits, every result bitwise-identical.  The
 *                daemon runs with a feed cache, so this pass also
 *                populates the shared front-end feed blob.
 *  5. warm-feed  the arena request set again, against a daemon with a
 *                FRESH result cache but the warm feed dir: every
 *                request re-simulates SLLC-only off the feed blob, all
 *                replies bitwise-identical, feed hits grow by exactly
 *                the request count, and the wall clock beats the
 *                no-feed oracle pass
 *  6. overload   a burst against a 1-worker/depth-1 daemon: Busy sheds
 *                observed, every result still correct (retry/fallback)
 *  7. torn-reply truncated SimResult frames mid-stream: detected as
 *                SimError(Protocol), recovered by reconnect-and-retry
 *  8. bad-blob   corrupted cache blobs: demoted to re-simulation
 *  9. hung-run   a stalling job: watchdog abort, Error to the client
 * 10. no-daemon  unreachable socket: in-process fallback, bit-identical
 * 11. restart    kill -9 emulation: torn blob + stale tmp left behind,
 *                new daemon on the same cache dir recovers the intact
 *                entries and re-simulates the torn one
 *
 * Chaos phases (process-isolated daemon; --chaos-fraction > 0):
 *
 * 12. chaos      a concurrent mix where a budgeted fraction of requests
 *                detonates inside its sandboxed worker (abort, alloc
 *                bomb, abort-ignoring hang).  The daemon must survive
 *                it all: every healthy reply bitwise-identical to the
 *                oracle, every doomed request answered with a typed
 *                SimError (Crash, or Hang for the forced kill), workers
 *                restarted behind the scenes.
 * 13. poison     one marked request is sent repeatedly: it kills K
 *                distinct workers, crosses the quarantine threshold and
 *                is refused with a typed error from then on — without
 *                consuming another worker.
 * 14. poison-restart  a NEW daemon on the same cache dir refuses the
 *                quarantined request immediately: the verdict came off
 *                the persistent poison index, no worker died for it.
 *
 * Writes BENCH_daemon.json with latencies, counters and a pass flag per
 * phase.  Exits nonzero if any phase fails.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "arena/arena_registry.hh"
#include "common/log.hh"
#include "harness.hh"
#include "service/client.hh"
#include "service/run_request.hh"
#include "service/daemon.hh"
#include "service/supervisor.hh"
#include "sim/feed_cache.hh"
#include "verify/fault_injector.hh"

using namespace rc;
using namespace rc::svc;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** The deterministic request set the whole stress run revolves around. */
std::vector<RunRequest>
makeRequests(std::uint32_t count)
{
    const SystemConfig base = baselineSystem(8);
    const SystemConfig reuse = reuseSystem(1.0, 1.0, 0, 8);
    const std::vector<Mix> mixes =
        makeMixes((count + 1) / 2, base.numCores, 7);
    std::vector<RunRequest> reqs;
    for (std::uint32_t i = 0; i < count; ++i) {
        RunRequest r;
        r.config = (i % 2 == 0) ? base : reuse;
        r.mix = mixes[i / 2];
        r.seed = 42;
        r.scale = 8;
        r.warmup = 60'000;
        r.measure = 300'000;
        reqs.push_back(r);
    }
    return reqs;
}

SimulateFn
directSim()
{
    return [](const RunRequest &req, const std::atomic<bool> *abort,
              std::atomic<std::uint64_t> *heartbeat) {
        return bench::simulateRequest(req, abort, heartbeat);
    };
}

/**
 * directSim plus chaos: a request whose seed carries a chaos marker
 * detonates (abort / alloc bomb / hang) instead of simulating.  Only
 * ever run under an --isolate daemon — detonating in-process would
 * take the harness down, which is exactly what isolation prevents.
 */
SimulateFn
chaosSim()
{
    return [](const RunRequest &req, const std::atomic<bool> *abort,
              std::atomic<std::uint64_t> *heartbeat) {
        FaultClass cls;
        if (chaosFromSeed(req.seed, cls))
            detonateChaos(cls, heartbeat);
        return bench::simulateRequest(req, abort, heartbeat);
    };
}

struct PhaseRecord
{
    std::string name;
    bool pass = false;
    double seconds = 0.0;
    std::string note;
};

bool
verifyAll(const std::vector<RunRequest> &reqs,
          const std::vector<RunResult> &oracle, RcClient &client,
          std::uint64_t &wrong)
{
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const RunResult got = client.simulate(reqs[i]);
        if (!runResultsEqual(got, oracle[i]))
            ++wrong;
    }
    return wrong == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t totalRequests = 2'000;
    std::uint32_t threads = 8;
    std::uint32_t distinct = 8;
    double minHitSpeedup = 100.0;
    double chaosFraction = 0.15; // share of chaos-phase requests doomed
    bool chaosOnly = false;      // skip phases 2-9 (CI chaos job)
    bool isolate = false;        // run phases 2-9 with --isolate daemons
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() +
                                                   std::strlen(prefix)
                                             : nullptr;
        };
        if (const char *v = value("--requests="))
            totalRequests = static_cast<std::uint64_t>(std::atoll(v));
        else if (const char *v = value("--threads="))
            threads = static_cast<std::uint32_t>(std::atoi(v));
        else if (const char *v = value("--distinct="))
            distinct = static_cast<std::uint32_t>(std::atoi(v));
        else if (const char *v = value("--min-hit-speedup="))
            minHitSpeedup = std::atof(v);
        else if (const char *v = value("--chaos-fraction="))
            chaosFraction = std::atof(v);
        else if (arg == "--chaos-only")
            chaosOnly = true;
        else if (arg == "--isolate")
            isolate = true;
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return 2;
        }
    }

    setQuiet(true); // keep the phase table clean of harness chatter
    const std::string dir =
        "stress-daemon-" + std::to_string(::getpid());
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
        std::perror("mkdir");
        return 1;
    }
    const std::string sock = "/tmp/rc-stress-" +
                             std::to_string(::getpid()) + ".sock";
    const std::vector<RunRequest> reqs = makeRequests(distinct);
    std::vector<PhaseRecord> phases;
    std::uint64_t wrongTotal = 0;
    double coldPerReq = 0.0, hotPerReq = 0.0, hitSpeedup = 0.0;
    double arenaColdSeconds = 0.0, warmFeedSeconds = 0.0;
    std::uint64_t warmFeedHits = 0;

    auto phase = [&phases](const std::string &name) {
        phases.push_back({name, false, 0.0, ""});
        return Clock::now();
    };
    auto endPhase = [&phases](Clock::time_point t0, bool pass,
                              std::string note) {
        phases.back().seconds = secondsSince(t0);
        phases.back().pass = pass;
        phases.back().note = std::move(note);
        std::printf("%-10s %s  (%.3fs)  %s\n", phases.back().name.c_str(),
                    pass ? "pass" : "FAIL", phases.back().seconds,
                    phases.back().note.c_str());
        std::fflush(stdout);
    };

    // 1. oracle ------------------------------------------------------
    auto t0 = phase("oracle");
    std::vector<RunResult> oracle;
    for (const RunRequest &r : reqs)
        oracle.push_back(bench::simulateRequest(r));
    endPhase(t0, true,
             std::to_string(reqs.size()) + " direct simulations");

    ClientConfig ccfg;
    ccfg.socketPath = sock;
    ccfg.fallback = directSim();

    // 2 + 3. cold then hot against one daemon ------------------------
    if (!chaosOnly) {
        DaemonConfig dcfg;
        dcfg.socketPath = sock;
        dcfg.cacheDir = dir + "/cache";
        dcfg.workers = threads;
        dcfg.queueDepth = 256;
        dcfg.isolateWorkers = isolate;
        Daemon daemon(dcfg, directSim());
        daemon.start();

        t0 = phase("cold");
        std::uint64_t wrong = 0;
        RcClient coldClient(ccfg);
        const bool coldOk = verifyAll(reqs, oracle, coldClient, wrong);
        coldPerReq = secondsSince(t0) / static_cast<double>(reqs.size());
        endPhase(t0, coldOk && coldClient.counters().fallbacks == 0,
                 std::to_string(wrong) + " wrong results");
        wrongTotal += wrong;

        t0 = phase("hot");
        std::atomic<std::uint64_t> hotWrong{0};
        std::vector<std::thread> pool;
        const std::uint64_t perThread =
            (totalRequests + threads - 1) / threads;
        for (std::uint32_t t = 0; t < threads; ++t)
            pool.emplace_back([&, t] {
                ClientConfig tc = ccfg;
                tc.seed = t + 1;
                RcClient client(tc);
                for (std::uint64_t i = 0; i < perThread; ++i) {
                    const std::size_t at = (t + i) % reqs.size();
                    const RunResult got = client.simulate(reqs[at]);
                    if (!runResultsEqual(got, oracle[at]))
                        hotWrong.fetch_add(1);
                }
            });
        for (std::thread &th : pool)
            th.join();
        const std::uint64_t issued = perThread * threads;
        const double hotWall = secondsSince(t0);

        // Per-hit latency is a single-client measure; the concurrent
        // pass above mixes in queueing delay, which is throughput, not
        // latency.
        std::uint64_t latWrong = 0;
        RcClient latClient(ccfg);
        const Clock::time_point l0 = Clock::now();
        constexpr std::uint64_t latProbes = 400;
        for (std::uint64_t i = 0; i < latProbes; ++i) {
            const std::size_t at = i % reqs.size();
            if (!runResultsEqual(latClient.simulate(reqs[at]),
                                 oracle[at]))
                ++latWrong;
        }
        hotPerReq = secondsSince(l0) / static_cast<double>(latProbes);
        hitSpeedup = hotPerReq > 0 ? coldPerReq / hotPerReq : 0.0;
        const bool hotOk = hotWrong.load() == 0 && latWrong == 0 &&
                           hitSpeedup >= minHitSpeedup;
        char note[200];
        std::snprintf(
            note, sizeof(note),
            "%llu concurrent (%.0f/s) + %llu serial, %llu wrong, hit "
            "%.0fus vs cold %.0fus = %.0fx (need >= %.0fx)",
            static_cast<unsigned long long>(issued),
            static_cast<double>(issued) / hotWall,
            static_cast<unsigned long long>(latProbes),
            static_cast<unsigned long long>(hotWrong.load() + latWrong),
            hotPerReq * 1e6, coldPerReq * 1e6, hitSpeedup, minHitSpeedup);
        endPhase(t0, hotOk, note);
        wrongTotal += hotWrong.load() + latWrong;

        daemon.requestStop();
        daemon.stop();
    }

    // 4. arena: one request per tournament policy --------------------
    if (!chaosOnly) {
        // Same system everywhere except the replacement policy, so the
        // only thing separating the digests is the policy id inside the
        // canonical request encoding.
        std::vector<RunRequest> areqs;
        std::vector<std::uint64_t> digests;
        const Mix amix = makeMixes(1, 8, 7)[0];
        for (const arena::PolicyInfo &info : arena::policyRegistry()) {
            if (!info.inTournament)
                continue;
            RunRequest r;
            r.config = conventionalSystem(8.0, info.kind, 8);
            r.mix = amix;
            r.seed = 42;
            r.scale = 8;
            r.warmup = 60'000;
            r.measure = 300'000;
            areqs.push_back(r);
            digests.push_back(requestDigest(r));
        }
        std::uint64_t collisions = 0;
        for (std::size_t i = 0; i < digests.size(); ++i)
            for (std::size_t j = i + 1; j < digests.size(); ++j)
                if (digests[i] == digests[j])
                    ++collisions;

        t0 = phase("arena");
        // The oracle pass runs feed-free: its wall clock is the honest
        // "every request pays its own front end" cost the warm-feed
        // phase is measured against.
        const auto oracleT0 = Clock::now();
        std::vector<RunResult> aoracle;
        for (const RunRequest &r : areqs)
            aoracle.push_back(bench::simulateRequest(r));
        arenaColdSeconds = secondsSince(oracleT0);

        // All 20+ requests share one private config prefix + mix, so
        // they share ONE feed key: the first simulation captures the
        // blob, the rest of the field replays it.
        const std::string feedDir = dir + "/feedcache";
        const SimulateFn feedSim =
            [feedDir](const RunRequest &req, const std::atomic<bool> *abort,
                      std::atomic<std::uint64_t> *heartbeat) {
                return bench::simulateRequest(req, abort, heartbeat,
                                              feedDir);
            };

        DaemonConfig dcfg;
        dcfg.socketPath = sock;
        dcfg.cacheDir = dir + "/cache-arena";
        dcfg.feedCacheDir = feedDir;
        dcfg.workers = threads;
        dcfg.queueDepth = 256;
        dcfg.isolateWorkers = isolate;
        {
            Daemon daemon(dcfg, feedSim);
            daemon.start();

            std::uint64_t wrong = 0;
            RcClient client(ccfg);
            verifyAll(areqs, aoracle, client, wrong);
            const std::uint64_t coldSim = daemon.counters().simulated;
            verifyAll(areqs, aoracle, client, wrong);
            const DaemonCounters c = daemon.counters();
            const bool ok = collisions == 0 && wrong == 0 &&
                            coldSim == areqs.size() &&
                            c.cacheHits >= areqs.size() &&
                            c.simulated == coldSim;
            char note[200];
            std::snprintf(note, sizeof(note),
                          "%zu policies, %llu digest collisions, cold %llu "
                          "simulated, repeat %llu cache hits, %llu wrong",
                          areqs.size(),
                          static_cast<unsigned long long>(collisions),
                          static_cast<unsigned long long>(coldSim),
                          static_cast<unsigned long long>(c.cacheHits),
                          static_cast<unsigned long long>(wrong));
            endPhase(t0, ok, note);
            wrongTotal += wrong;
            daemon.requestStop();
            daemon.stop();
        }

        // 5. warm-feed: fresh result cache, warm feed blobs ----------
        {
            DaemonConfig wcfg;
            wcfg.socketPath = sock;
            // A result cache the daemon has never seen: every request
            // must re-simulate — but off the feed blob the arena pass
            // just stored, so the front end is never re-run.
            wcfg.cacheDir = dir + "/cache-warmfeed";
            wcfg.feedCacheDir = feedDir;
            wcfg.workers = threads;
            wcfg.queueDepth = 256;
            // In-process workers regardless of --isolate: the asserted
            // feed counters live in this process's FeedCache registry,
            // and a forked child's hits never reach it.
            wcfg.isolateWorkers = false;
            Daemon daemon(wcfg, feedSim);
            daemon.start();

            t0 = phase("warm-feed");
            const FeedCacheStats feed0 = FeedCache::open(feedDir)->stats();
            std::uint64_t wrong = 0;
            RcClient client(ccfg);
            verifyAll(areqs, aoracle, client, wrong);
            warmFeedSeconds = secondsSince(t0);
            const FeedCacheStats feed1 = FeedCache::open(feedDir)->stats();
            warmFeedHits = feed1.hits - feed0.hits;
            const DaemonCounters c = daemon.counters();
            const bool ok = wrong == 0 && c.simulated == areqs.size() &&
                            warmFeedHits == areqs.size();
            char note[200];
            std::snprintf(
                note, sizeof(note),
                "%zu re-simulated on a fresh result cache, %llu warm "
                "feed hits, %.3fs vs %.3fs feed-free (%.2fx)",
                areqs.size(),
                static_cast<unsigned long long>(warmFeedHits),
                warmFeedSeconds, arenaColdSeconds,
                arenaColdSeconds / std::max(warmFeedSeconds, 1e-9));
            endPhase(t0, ok, note);
            wrongTotal += wrong;
            daemon.requestStop();
            daemon.stop();
        }
    }

    // 5. overload: tiny queue, slow worker, concurrent burst ---------
    if (!chaosOnly) {
        DaemonConfig dcfg;
        dcfg.socketPath = sock;
        dcfg.cacheDir = dir + "/cache-overload";
        dcfg.workers = 1;
        dcfg.queueDepth = 1;
        dcfg.retryAfterMs = 10;
        dcfg.isolateWorkers = isolate;
        Daemon daemon(dcfg, directSim());
        daemon.start();

        t0 = phase("overload");
        std::atomic<std::uint64_t> wrong{0};
        std::vector<std::thread> pool;
        for (std::uint32_t t = 0; t < threads; ++t)
            pool.emplace_back([&, t] {
                ClientConfig tc = ccfg;
                tc.seed = 100 + t;
                tc.maxAttempts = 4;
                tc.backoffBaseMs = 5;
                RcClient client(tc);
                for (std::size_t i = 0; i < reqs.size(); ++i) {
                    const std::size_t at = (i + t) % reqs.size();
                    const RunResult got = client.simulate(reqs[at]);
                    if (!runResultsEqual(got, oracle[at]))
                        wrong.fetch_add(1);
                }
            });
        for (std::thread &th : pool)
            th.join();
        const DaemonCounters c = daemon.counters();
        endPhase(t0, wrong.load() == 0 && c.sheds > 0,
                 std::to_string(c.sheds) + " sheds, " +
                     std::to_string(wrong.load()) + " wrong");
        wrongTotal += wrong.load();
        daemon.requestStop();
        daemon.stop();
    }

    // 6. torn replies ------------------------------------------------
    if (!chaosOnly) {
        DaemonConfig dcfg;
        dcfg.socketPath = sock;
        dcfg.cacheDir = dir + "/cache-torn";
        dcfg.workers = 2;
        dcfg.faultTruncateReplies = 3;
        dcfg.isolateWorkers = isolate;
        Daemon daemon(dcfg, directSim());
        daemon.start();

        t0 = phase("torn-reply");
        std::uint64_t wrong = 0;
        RcClient client(ccfg);
        const bool ok = verifyAll(reqs, oracle, client, wrong);
        const ClientCounters cc = client.counters();
        endPhase(t0, ok && cc.reconnects >= 3,
                 std::to_string(cc.reconnects) + " reconnects, " +
                     std::to_string(wrong) + " wrong");
        wrongTotal += wrong;
        daemon.requestStop();
        daemon.stop();
    }

    // 7. corrupted blobs ---------------------------------------------
    if (!chaosOnly) {
        DaemonConfig dcfg;
        dcfg.socketPath = sock;
        dcfg.cacheDir = dir + "/cache-corrupt";
        dcfg.workers = 2;
        dcfg.faultCorruptBlobs = 2; // first two stores are mangled
        dcfg.isolateWorkers = isolate;
        Daemon daemon(dcfg, directSim());
        daemon.start();

        t0 = phase("bad-blob");
        std::uint64_t wrong = 0;
        RcClient client(ccfg);
        bool ok = verifyAll(reqs, oracle, client, wrong); // misses+stores
        ok = verifyAll(reqs, oracle, client, wrong) && ok; // hits probe
        const ResultCacheStats cs = daemon.cache().stats();
        endPhase(t0, ok && cs.corruptDropped >= 2,
                 std::to_string(cs.corruptDropped) +
                     " corrupt blobs dropped, " + std::to_string(wrong) +
                     " wrong");
        wrongTotal += wrong;
        daemon.requestStop();
        daemon.stop();
    }

    // 8. hung run: the watchdog must abort it ------------------------
    if (!chaosOnly) {
        DaemonConfig dcfg;
        dcfg.socketPath = sock;
        dcfg.cacheDir = dir + "/cache-hang";
        dcfg.workers = 1;
        dcfg.hangTimeout = 0.2;
        dcfg.isolateWorkers = isolate;
        // A request with this marker seed stalls without heartbeat
        // until the watchdog aborts it — the livelock test hook of the
        // service layer.
        const std::uint64_t hangSeed = 0xdeadbeef;
        Daemon daemon(dcfg, [hangSeed](const RunRequest &req,
                                       const std::atomic<bool> *abort,
                                       std::atomic<std::uint64_t> *beat) {
            if (req.seed == hangSeed) {
                while (abort == nullptr || !abort->load())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                throwSimError(SimError::Kind::Hang,
                              "run aborted by the service watchdog");
            }
            return bench::simulateRequest(req, abort, beat);
        });
        daemon.start();

        t0 = phase("hung-run");
        RunRequest hung = reqs[0];
        hung.seed = hangSeed;
        ClientConfig hc = ccfg;
        hc.fallback = nullptr; // the error must surface, not be hidden
        RcClient client(hc);
        bool sawHang = false;
        try {
            client.simulate(hung);
        } catch (const SimError &err) {
            sawHang = err.kind() == SimError::Kind::Hang;
        }
        const DaemonCounters c = daemon.counters();
        endPhase(t0, sawHang && c.hangAborts == 1 && c.quarantines == 1,
                 std::string("watchdog abort ") +
                     (sawHang ? "surfaced" : "LOST"));
        daemon.requestStop();
        daemon.stop();
    }

    // 9. daemon unreachable: in-process fallback ---------------------
    if (!chaosOnly) {
        t0 = phase("no-daemon");
        ClientConfig fc = ccfg;
        fc.socketPath = "/tmp/rc-stress-nobody-home.sock";
        RcClient client(fc);
        std::uint64_t wrong = 0;
        const bool ok = verifyAll(reqs, oracle, client, wrong);
        endPhase(t0,
                 ok && client.counters().fallbacks == reqs.size(),
                 std::to_string(client.counters().fallbacks) +
                     " fallbacks, " + std::to_string(wrong) + " wrong");
        wrongTotal += wrong;
    }

    // 10. kill -9 emulation and restart recovery ----------------------
    if (!chaosOnly) {
        t0 = phase("restart");
        const std::string cacheDir = dir + "/cache"; // phase-2 blobs
        // Tear one blob mid-write and leave a stale tmp file behind, as
        // a kill -9 between fwrite and rename would.
        const std::uint64_t victim = requestDigest(reqs[0]);
        std::string victimPath;
        {
            ResultCache probe(cacheDir);
            victimPath = probe.blobPath(victim);
        }
        if (std::FILE *f = std::fopen(victimPath.c_str(), "r+b")) {
            std::fclose(f);
            (void)::truncate(victimPath.c_str(), 10);
        }
        if (std::FILE *tmp = std::fopen(
                (cacheDir + "/memo-dead.bin.tmp").c_str(), "wb"))
            std::fclose(tmp);

        DaemonConfig dcfg;
        dcfg.socketPath = sock;
        dcfg.cacheDir = cacheDir;
        dcfg.workers = 2;
        dcfg.isolateWorkers = isolate;
        Daemon daemon(dcfg, directSim());
        daemon.start();
        std::uint64_t wrong = 0;
        RcClient client(ccfg);
        const bool ok = verifyAll(reqs, oracle, client, wrong);
        const DaemonCounters c = daemon.counters();
        const ResultCacheStats cs = daemon.cache().stats();
        // Every intact entry must come from the cache; only the torn
        // one re-simulates.
        endPhase(t0,
                 ok && c.simulated == 1 &&
                     c.cacheHits == reqs.size() - 1 &&
                     cs.corruptDropped == 1,
                 std::to_string(c.cacheHits) + " recovered hits, " +
                     std::to_string(c.simulated) + " re-simulated, " +
                     std::to_string(wrong) + " wrong");
        wrongTotal += wrong;
        daemon.requestStop();
        daemon.stop();
    }

    // 11. chaos: sandboxed workers under deliberate fire -------------
    std::uint64_t chaosIssued = 0, chaosInjected = 0;
    SupervisorCounters chaosFleet{};
    std::uint64_t poisonQuarantines = 0, poisonRefusals = 0;
    if (chaosFraction > 0.0) {
        DaemonConfig dcfg;
        dcfg.socketPath = sock;
        dcfg.cacheDir = dir + "/cache-chaos";
        dcfg.workers = 4;
        dcfg.queueDepth = 256;
        dcfg.isolateWorkers = true;
        dcfg.hangTimeout = 0.25; // hang chaos must die by watchdog
        dcfg.workerAbortGraceMs = 150;
        dcfg.workerAddressSpaceBytes = 1ull << 30; // cap alloc bombs
        // The matrix kills workers far faster than any organic flap;
        // shedding here would mask the typed-error contract this phase
        // exists to prove.  Flap shedding has its own unit coverage.
        dcfg.flapDeaths = 0x7fffffff;
        // Likewise keep respawns snappy: the default backoff is tuned
        // for production fork bombs, not a harness killing ~15% of all
        // jobs on purpose.
        dcfg.workerRestartBackoffMs = 2;
        dcfg.workerRestartBackoffCapMs = 50;
        Daemon daemon(dcfg, chaosSim());
        daemon.start();

        t0 = phase("chaos");
        const std::uint64_t period = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(1.0 / chaosFraction + 0.5));
        const std::uint64_t perThread =
            (totalRequests + threads - 1) / threads;
        chaosIssued = perThread * threads;
        std::atomic<std::uint64_t> healthyWrong{0}, healthyErrors{0};
        std::atomic<std::uint64_t> typedOk{0}, typedBad{0};
        std::atomic<std::uint32_t> salt{0};
        std::vector<std::thread> pool;
        for (std::uint32_t t = 0; t < threads; ++t)
            pool.emplace_back([&, t] {
                ClientConfig tc = ccfg;
                tc.seed = 9'000 + t;
                tc.fallback = nullptr; // a detonation must never run
                                       // inside this process
                RcClient client(tc);
                for (std::uint64_t i = 0; i < perThread; ++i) {
                    const std::uint64_t n = t * perThread + i;
                    const std::size_t at = n % reqs.size();
                    if (n % period != 0) {
                        try {
                            if (!runResultsEqual(client.simulate(reqs[at]),
                                                 oracle[at]))
                                healthyWrong.fetch_add(1);
                        } catch (const SimError &) {
                            healthyErrors.fetch_add(1);
                        }
                        continue;
                    }
                    // Doomed request: a chaos marker rides the seed (and
                    // therefore the digest); salts keep digests distinct
                    // so phase 11 owns the quarantine path.
                    static const FaultClass mix[4] = {
                        FaultClass::WorkerCrash, FaultClass::WorkerOom,
                        FaultClass::WorkerCrash, FaultClass::WorkerHang};
                    const std::uint32_t s = salt.fetch_add(1);
                    const FaultClass cls = mix[s % 4];
                    RunRequest doomed = reqs[at];
                    doomed.seed = chaosSeed(cls, s);
                    const SimError::Kind want =
                        cls == FaultClass::WorkerHang
                            ? SimError::Kind::Hang
                            : SimError::Kind::Crash;
                    try {
                        client.simulate(doomed);
                        typedBad.fetch_add(1); // must never succeed
                    } catch (const SimError &err) {
                        (err.kind() == want ? typedOk : typedBad)
                            .fetch_add(1);
                    }
                }
            });
        for (std::thread &th : pool)
            th.join();
        chaosInjected = typedOk.load() + typedBad.load();

        // The daemon must shrug the carnage off: a fresh client gets
        // every healthy answer, bitwise-identical, from live workers.
        std::uint64_t afterWrong = 0;
        ClientConfig ac = ccfg;
        ac.fallback = nullptr;
        RcClient after(ac);
        bool aliveOk = true;
        try {
            aliveOk = verifyAll(reqs, oracle, after, afterWrong);
        } catch (const SimError &) {
            aliveOk = false;
        }
        chaosFleet = daemon.fleetCounters();
        const bool ok = healthyWrong.load() == 0 &&
                        healthyErrors.load() == 0 &&
                        typedBad.load() == 0 &&
                        typedOk.load() == chaosInjected &&
                        chaosInjected * 10 >= chaosIssued && aliveOk &&
                        chaosFleet.crashes > 0 &&
                        chaosFleet.restarts > 0 &&
                        chaosFleet.hangKills > 0 &&
                        chaosFleet.containedErrors > 0;
        char note[220];
        std::snprintf(
            note, sizeof(note),
            "%llu/%llu doomed, %llu typed, %llu mistyped, %llu healthy "
            "wrong/err, %llu worker deaths (%llu hang kills), %llu "
            "restarts, %llu contained",
            static_cast<unsigned long long>(chaosInjected),
            static_cast<unsigned long long>(chaosIssued),
            static_cast<unsigned long long>(typedOk.load()),
            static_cast<unsigned long long>(typedBad.load()),
            static_cast<unsigned long long>(healthyWrong.load() +
                                            healthyErrors.load() +
                                            afterWrong),
            static_cast<unsigned long long>(chaosFleet.crashes),
            static_cast<unsigned long long>(chaosFleet.hangKills),
            static_cast<unsigned long long>(chaosFleet.restarts),
            static_cast<unsigned long long>(chaosFleet.containedErrors));
        endPhase(t0, ok, note);
        wrongTotal += healthyWrong.load() + afterWrong;
        daemon.requestStop();
        daemon.stop();
    }

    // 12 + 13. poison quarantine, then its persistence ---------------
    if (chaosFraction > 0.0) {
        DaemonConfig pcfg;
        pcfg.socketPath = sock;
        pcfg.cacheDir = dir + "/cache-poison";
        pcfg.workers = 2;
        pcfg.isolateWorkers = true;
        pcfg.poisonThreshold = 3;
        RunRequest doomed = reqs[0];
        doomed.seed = chaosSeed(FaultClass::WorkerCrash, 0xf00d);
        ClientConfig pc = ccfg;
        pc.fallback = nullptr; // refusal must surface, not be hidden

        {
            Daemon daemon(pcfg, chaosSim());
            daemon.start();
            t0 = phase("poison");
            RcClient client(pc);
            std::uint32_t workerKills = 0, refusals = 0, other = 0;
            for (int i = 0; i < 6; ++i) {
                try {
                    client.simulate(doomed);
                    ++other; // a doomed request must never succeed
                } catch (const SimError &err) {
                    if (err.kind() != SimError::Kind::Crash)
                        ++other;
                    else if (std::strstr(err.what(), "quarantined"))
                        ++refusals;
                    else
                        ++workerKills;
                }
            }
            const DaemonCounters c = daemon.counters();
            const SupervisorCounters fc = daemon.fleetCounters();
            const PoisonStats ps = daemon.poisonStats();
            poisonQuarantines += fc.poisonQuarantines;
            poisonRefusals += c.poisonRefused;
            const bool ok = workerKills == 3 && refusals == 3 &&
                            other == 0 && c.poisonRefused == 3 &&
                            fc.poisonQuarantines == 1 &&
                            fc.crashes == 3 && ps.quarantined == 1;
            char note[200];
            std::snprintf(note, sizeof(note),
                          "%u kills then quarantined, %u refusals "
                          "(daemon refused %llu, workers died %llu)",
                          workerKills, refusals,
                          static_cast<unsigned long long>(c.poisonRefused),
                          static_cast<unsigned long long>(fc.crashes));
            endPhase(t0, ok, note);
            daemon.requestStop();
            daemon.stop();
        }

        // 13. a NEW daemon on the same cache dir must refuse the
        // quarantined digest off the persistent index — before any
        // worker gets a chance to die for it.
        {
            Daemon daemon(pcfg, chaosSim());
            daemon.start();
            t0 = phase("poison-restart");
            RcClient client(pc);
            bool refused = false;
            try {
                client.simulate(doomed);
            } catch (const SimError &err) {
                refused = err.kind() == SimError::Kind::Crash &&
                          std::strstr(err.what(), "quarantined");
            }
            const DaemonCounters c = daemon.counters();
            const SupervisorCounters fc = daemon.fleetCounters();
            const PoisonStats ps = daemon.poisonStats();
            poisonRefusals += c.poisonRefused;
            const bool ok = refused && fc.crashes == 0 &&
                            c.poisonRefused == 1 && ps.recovered >= 1 &&
                            ps.quarantined >= 1;
            endPhase(t0, ok,
                     refused ? "verdict recovered from poison.index, "
                               "no worker died"
                             : "quarantine NOT recovered after restart");
            daemon.requestStop();
            daemon.stop();
        }
    }

    // BENCH_daemon.json ----------------------------------------------
    bool allPass = true;
    for (const PhaseRecord &p : phases)
        allPass = allPass && p.pass;
    if (std::FILE *f = std::fopen("BENCH_daemon.json", "w")) {
        std::fprintf(f, "{\n  \"bench\": \"stress_daemon\",\n");
        std::fprintf(f, "  \"requests\": %llu,\n",
                     static_cast<unsigned long long>(totalRequests));
        std::fprintf(f, "  \"threads\": %u,\n", threads);
        std::fprintf(f, "  \"distinct\": %u,\n", distinct);
        std::fprintf(f, "  \"cold_us_per_request\": %.1f,\n",
                     coldPerReq * 1e6);
        std::fprintf(f, "  \"hit_us_per_request\": %.1f,\n",
                     hotPerReq * 1e6);
        std::fprintf(f, "  \"hit_speedup\": %.1f,\n", hitSpeedup);
        std::fprintf(f, "  \"arena_cold_seconds\": %.3f,\n",
                     arenaColdSeconds);
        std::fprintf(f, "  \"warm_feed_seconds\": %.3f,\n",
                     warmFeedSeconds);
        std::fprintf(f, "  \"warm_feed_hits\": %llu,\n",
                     static_cast<unsigned long long>(warmFeedHits));
        std::fprintf(f, "  \"wrong_results\": %llu,\n",
                     static_cast<unsigned long long>(wrongTotal));
        std::fprintf(f, "  \"isolate\": %s,\n",
                     isolate ? "true" : "false");
        std::fprintf(f, "  \"chaos_requests\": %llu,\n",
                     static_cast<unsigned long long>(chaosIssued));
        std::fprintf(f, "  \"chaos_injected\": %llu,\n",
                     static_cast<unsigned long long>(chaosInjected));
        std::fprintf(f, "  \"worker_crashes\": %llu,\n",
                     static_cast<unsigned long long>(chaosFleet.crashes));
        std::fprintf(f, "  \"worker_restarts\": %llu,\n",
                     static_cast<unsigned long long>(chaosFleet.restarts));
        std::fprintf(f, "  \"hang_kills\": %llu,\n",
                     static_cast<unsigned long long>(chaosFleet.hangKills));
        std::fprintf(f, "  \"rlimit_cpu_kills\": %llu,\n",
                     static_cast<unsigned long long>(
                         chaosFleet.rlimitCpuKills));
        std::fprintf(f, "  \"contained_errors\": %llu,\n",
                     static_cast<unsigned long long>(
                         chaosFleet.containedErrors));
        std::fprintf(f, "  \"poison_quarantines\": %llu,\n",
                     static_cast<unsigned long long>(poisonQuarantines));
        std::fprintf(f, "  \"poison_refusals\": %llu,\n",
                     static_cast<unsigned long long>(poisonRefusals));
        std::fprintf(f, "  \"phases\": [\n");
        for (std::size_t i = 0; i < phases.size(); ++i)
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"pass\": %s, "
                         "\"seconds\": %.3f, \"note\": \"%s\"}%s\n",
                         phases[i].name.c_str(),
                         phases[i].pass ? "true" : "false",
                         phases[i].seconds, phases[i].note.c_str(),
                         i + 1 < phases.size() ? "," : "");
        std::fprintf(f, "  ],\n  \"pass\": %s\n}\n",
                     allPass ? "true" : "false");
        std::fclose(f);
    }

    std::printf("stress_daemon: %s (%llu wrong results; "
                "BENCH_daemon.json written)\n",
                allPass ? "PASS" : "FAIL",
                static_cast<unsigned long long>(wrongTotal));
    return allPass ? 0 : 1;
}
