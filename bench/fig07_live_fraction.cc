/**
 * @file
 * Figure 7 reproduction: average fraction of live data-array lines for
 * the 8 MB conventional cache under LRU / DRRIP / NRR and for the
 * selected reuse-cache configurations (plus the Section 2.1 averages).
 */

#include <iostream>

#include "analysis/liveness.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

namespace
{

double
liveOf(const rc::SystemConfig &sys, std::uint64_t capacity_lines,
       const std::vector<rc::Mix> &mixes, const rc::bench::RunOptions &opt)
{
    rc::Accum acc;
    for (const rc::Mix &mix : mixes) {
        rc::GenerationTracker tracker;
        rc::Cycle start = 0, end = 0;
        rc::bench::runMix(sys, mix, opt, &tracker, &start, &end);
        acc.add(rc::averageLiveFraction(tracker.records(), start, end,
                                        opt.samplePeriod,
                                        capacity_lines));
    }
    return acc.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 7: average live fraction of the data array",
        "LRU 16.1%, DRRIP 35.9%, NRR 40.0% (conv 8MB); RC-8/4 55.1%, "
        "RC-8/2 57.3%, RC-4/1 48.7%, RC-4/0.5 41.5%");

    const auto mixes = makeMixes(opt.mixCount, 8, 7);

    Table t("Average fraction of live lines in the data array");
    t.header({"config", "live fraction", "paper"});

    struct ConvRow { const char *name; ReplKind repl; double paper; };
    const ConvRow convs[] = {
        {"LRU", ReplKind::LRU, 0.161},
        {"DRRIP", ReplKind::DRRIP, 0.359},
        {"NRR", ReplKind::NRR, 0.400},
    };
    for (const ConvRow &c : convs) {
        const SystemConfig sys = conventionalSystem(8, c.repl, opt.scale);
        const double live =
            liveOf(sys, sys.conv.capacityBytes / lineBytes, mixes, opt);
        t.row({c.name, fmtPercent(live), fmtPercent(c.paper)});
        std::cout << "  " << c.name << ": " << fmtPercent(live) << "\n"
                  << std::flush;
    }

    struct RcRow { const char *name; double tag, data, paper; };
    const RcRow rcs[] = {
        {"RC-8/4", 8, 4, 0.551},
        {"RC-8/2", 8, 2, 0.573},
        {"RC-4/1", 4, 1, 0.487},
        {"RC-4/0.5", 4, 0.5, 0.415},
    };
    for (const RcRow &c : rcs) {
        const SystemConfig sys = reuseSystem(c.tag, c.data, 0, opt.scale);
        const double live =
            liveOf(sys, sys.reuse.dataBytes / lineBytes, mixes, opt);
        t.row({c.name, fmtPercent(live), fmtPercent(c.paper)});
        std::cout << "  " << c.name << ": " << fmtPercent(live) << "\n"
                  << std::flush;
    }
    t.print(std::cout);

    std::cout << "\npaper headline: with half the lines, RC-8/4 almost "
                 "doubles the number of live lines of the baseline\n";
    return 0;
}
