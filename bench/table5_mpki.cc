/**
 * @file
 * Table 5 reproduction: average per-application MPKI at each cache level
 * of the baseline system (8 MB LRU), measured over homogeneous runs of
 * each SPEC analog (all eight cores run the same application, mirroring
 * "the average of all instances of an application").
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"

namespace
{

/** Paper Table 5 values for the reference column. */
struct PaperRow
{
    const char *name;
    double l1, l2, llc;
};

const PaperRow paperRows[] = {
    {"perlbench", 3.7, 0.8, 0.6},    {"bzip2", 8.2, 4.3, 2.1},
    {"gcc", 21.8, 7.1, 6.2},         {"bwaves", 20.3, 19.6, 19.6},
    {"gamess", 75.3, 46.2, 28.6},    {"mcf", 22.9, 22.2, 18.1},
    {"milc", 21.6, 21.6, 21.5},      {"zeusmp", 12.3, 6.4, 6.3},
    {"gromacs", 8.71, 5.91, 5.91},   {"cactusADM", 13.9, 1.4, 0.7},
    {"leslie3d", 29.5, 18.1, 17.7},  {"namd", 1.4, 0.2, 0.1},
    {"gobmk", 9.5, 0.5, 0.4},        {"dealII", 2.3, 0.3, 0.3},
    {"soplex", 6.7, 5.8, 4.8},       {"povray", 11.0, 0.3, 0.3},
    {"calculix", 13.8, 3.7, 1.5},    {"hmmer", 2.9, 2.2, 1.7},
    {"sjeng", 4.2, 0.5, 0.5},        {"GemsFDTD", 25.8, 25.7, 21.6},
    {"libquantum", 36.6, 36.6, 36.6}, {"h264ref", 3.5, 0.7, 0.6},
    {"tonto", 4.88, 0.86, 0.52},     {"lbm", 68.1, 39.2, 39.2},
    {"omnetpp", 7.3, 4.4, 1.2},      {"astar", 6.9, 0.9, 0.7},
    {"wrf", 4.1, 1.6, 0.5},          {"sphinx3", 13.8, 8.0, 6.3},
    {"xalancbmk", 8.2, 7.0, 6.4},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Table 5: baseline per-application MPKI (L1/L2/LLC)",
        "the synthetic analogs are calibrated to reproduce this "
        "qualitative pattern; measured vs paper shown side by side");

    Table t("Average MPKI on the 8 MB LRU baseline "
            "(measured | paper target)");
    t.header({"application", "L1", "L1 paper", "L2", "L2 paper", "LLC",
              "LLC paper"});

    // One homogeneous run per application, fanned out over the pool;
    // rows are emitted afterwards in table order so output is identical
    // for any --jobs value.
    constexpr std::size_t numRows = std::size(paperRows);
    std::vector<bench::RunResult> results(numRows);
    bench::forEachRun(numRows, opt, [&](std::size_t i) {
        Mix mix;
        for (int c = 0; c < 8; ++c)
            mix.apps.push_back(paperRows[i].name);
        results[i] = bench::runMix(bench::baselineFor(opt), mix, opt);
    });

    for (std::size_t i = 0; i < numRows; ++i) {
        const PaperRow &row = paperRows[i];
        const auto &res = results[i];
        double l1 = 0, l2 = 0, llc = 0;
        for (const MpkiTriple &m : res.mpki) {
            l1 += m.l1;
            l2 += m.l2;
            llc += m.llc;
        }
        const double n = static_cast<double>(res.mpki.size());
        t.row({row.name, fmtDouble(l1 / n, 1), fmtDouble(row.l1, 1),
               fmtDouble(l2 / n, 1), fmtDouble(row.l2, 1),
               fmtDouble(llc / n, 1), fmtDouble(row.llc, 1)});
    }
    std::cout << "  " << numRows << " applications simulated\n"
              << std::flush;
    t.print(std::cout);
    return 0;
}
