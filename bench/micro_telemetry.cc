/**
 * @file
 * google-benchmark micros keeping the telemetry overhead budget honest:
 * the RC_TEVENT hook with no tracer installed, with a tracer installed
 * but runtime-disabled, and fully enabled; plus an SLLC request loop
 * with and without tracing so the end-to-end hot-path cost is visible.
 *
 * The claims these enforce (see bench/micro_telemetry in ISSUE.md):
 * compiled-out tracing (-DRC_TRACE=OFF) adds nothing because the hook
 * is not there; the no-tracer and runtime-disabled hooks cost a TLS
 * load and a branch, so a traced build with telemetry off must stay
 * within a few percent of an untraced one.
 */

#include <benchmark/benchmark.h>

#include "cache/conventional_llc.hh"
#include "mem/dram.hh"
#include "reuse/reuse_cache.hh"
#include "telemetry/trace_event.hh"

namespace
{

using namespace rc;

/** Workload stand-in: a pure arithmetic step the hook rides along. */
inline std::uint64_t
step(std::uint64_t &x)
{
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x;
}

void
BM_HookNoTracer(benchmark::State &state)
{
    // The common case in production sweeps: nothing installed, the
    // hook is one TLS load and a null check.
    EventTracer::setCurrent(nullptr);
    std::uint64_t x = 1;
    for (auto _ : state) {
        RC_TEVENT("micro.evt", TraceDomain::Sim, 0, x);
        benchmark::DoNotOptimize(step(x));
    }
}
BENCHMARK(BM_HookNoTracer);

void
BM_HookDisabled(benchmark::State &state)
{
    // Tracer installed but runtime-gated off: adds the enabled() load.
    EventTracer tracer;
    tracer.setEnabled(false);
    ScopedTracer scope(&tracer);
    std::uint64_t x = 1;
    for (auto _ : state) {
        RC_TEVENT("micro.evt", TraceDomain::Sim, 0, x);
        benchmark::DoNotOptimize(step(x));
    }
}
BENCHMARK(BM_HookDisabled);

void
BM_HookEnabled(benchmark::State &state)
{
    // Full recording cost.  The ring is recreated outside the timed
    // region whenever it fills so every timed record() lands in the
    // ring instead of measuring the overflow drop path.
    EventTracer::Config cfg;
    cfg.ringCapacity = 1 << 16;
    auto tracer = std::make_unique<EventTracer>(cfg);
    ScopedTracer scope(tracer.get());
    std::uint64_t x = 1;
    std::size_t n = 0;
    for (auto _ : state) {
        if (++n == cfg.ringCapacity) {
            state.PauseTiming();
            EventTracer::setCurrent(nullptr);
            tracer = std::make_unique<EventTracer>(cfg);
            EventTracer::setCurrent(tracer.get());
            n = 0;
            state.ResumeTiming();
        }
        RC_TEVENT("micro.evt", TraceDomain::Sim, 0, x);
        benchmark::DoNotOptimize(step(x));
    }
}
BENCHMARK(BM_HookEnabled);

class NullRecaller : public RecallHandler
{
  public:
    bool recall(Addr, std::uint32_t) override { return false; }
    bool downgrade(Addr, std::uint32_t) override { return false; }
};

/**
 * The end-to-end check: a reuse-cache request loop, which embeds the
 * llc/coherence/DRAM hooks, under the three tracer states.  Compare
 * Untraced vs Disabled for the runtime-off overhead and vs Enabled for
 * the recording overhead.
 */
template <int mode> // 0 = no tracer, 1 = disabled, 2 = enabled
void
BM_LlcRequest(benchmark::State &state)
{
    MemCtrl mem(MemCtrlConfig{});
    ReuseCacheConfig cfg =
        ReuseCacheConfig::standard(1ull << 20, 128 * 1024, 0);
    ReuseCache llc(cfg, mem);
    NullRecaller rec;
    llc.setRecallHandler(&rec);

    EventTracer::Config tcfg;
    tcfg.ringCapacity = 1 << 16;
    std::unique_ptr<EventTracer> tracer;
    if (mode != 0) {
        tracer = std::make_unique<EventTracer>(tcfg);
        tracer->setEnabled(mode == 2);
    }
    ScopedTracer scope(tracer.get());

    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr line = rng.below(1 << 16) * lineBytes;
        benchmark::DoNotOptimize(llc.request(
            LlcRequest{line, static_cast<CoreId>(rng.below(8)),
                       ProtoEvent::GETS, now += 3}));
    }
    // Enabled mode drops once the ring fills; the hook cost (what this
    // micro measures) is identical either way, but surface the count so
    // a surprising number is visible in the report.
    if (mode == 2)
        state.counters["dropped"] =
            static_cast<double>(tracer->dropped());
}
BENCHMARK(BM_LlcRequest<0>)->Name("BM_LlcRequest_Untraced");
BENCHMARK(BM_LlcRequest<1>)->Name("BM_LlcRequest_TracerDisabled");
BENCHMARK(BM_LlcRequest<2>)->Name("BM_LlcRequest_TracerEnabled");

} // namespace
