/**
 * @file
 * Policy arena tournament: every registered replacement policy races on
 * the same conventional 8 MB SLLC over the same mixes, ranked against
 * the paper's two reference points — the NRR reuse cache (RC-4/1) and
 * the NRU conventional cache the paper costs its baseline with.
 *
 * All (policy x mix) runs go through runConfigsOverMixes, so the whole
 * field shares one front-end pass per mix via the fan-out machinery and
 * the results — and therefore the leaderboard and BENCH_arena.json —
 * are bit-identical at any --jobs=N.
 *
 * Outputs:
 *   stdout          ranked markdown leaderboard (also BENCH_arena.md)
 *   BENCH_arena.json  full per-policy, per-mix results
 *
 * --policy=NAME restricts the field to one contender (the two baselines
 * always run); --mixes floors at 8 so a rank is never decided by fewer
 * workloads than the acceptance bar demands.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arena/arena_registry.hh"
#include "harness.hh"

namespace
{

using namespace rc;

/** One ranked row of the leaderboard. */
struct Standing
{
    const arena::PolicyInfo *info = nullptr;
    double llcMpki = 0.0;     //!< mean per-core LLC MPKI over all mixes
    double vsConvNru = 0.0;   //!< mean speedup vs conventional NRU
    double vsReuseNrr = 0.0;  //!< mean speedup vs the NRR reuse cache
    std::vector<double> perMixIpc; //!< aggregate IPC per mix
};

double
meanLlcMpki(const std::vector<bench::RunResult> &rows)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const bench::RunResult &r : rows) {
        for (const MpkiTriple &m : r.mpki) {
            sum += m.llc;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
meanSpeedup(const std::vector<bench::RunResult> &sys,
            const std::vector<bench::RunResult> &base)
{
    double sum = 0.0;
    for (std::size_t m = 0; m < sys.size(); ++m)
        sum += bench::speedupRatio(sys[m].aggregateIpc,
                                   base[m].aggregateIpc);
    return sys.empty() ? 0.0 : sum / static_cast<double>(sys.size());
}

/** Markdown leaderboard (printed and written to BENCH_arena.md). */
std::string
leaderboardMarkdown(const std::vector<Standing> &ranked,
                    std::size_t mix_count)
{
    std::ostringstream os;
    os << "# Policy arena leaderboard\n\n"
       << "Conventional 8 MB SLLC per contender, " << mix_count
       << " mixes; speedups are mean per-mix aggregate-IPC ratios.\n\n"
       << "| rank | policy | LLC MPKI | vs conv-NRU | vs RC-4/1 (NRR) "
          "| notes |\n"
       << "|-----:|--------|---------:|------------:|----------------:"
          "|-------|\n";
    char buf[64];
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const Standing &st = ranked[i];
        os << "| " << (i + 1) << " | " << st.info->name << " | ";
        std::snprintf(buf, sizeof(buf), "%.3f", st.llcMpki);
        os << buf << " | ";
        std::snprintf(buf, sizeof(buf), "%.4f", st.vsConvNru);
        os << buf << " | ";
        std::snprintf(buf, sizeof(buf), "%.4f", st.vsReuseNrr);
        os << buf << " | " << st.info->summary << " |\n";
    }
    return os.str();
}

/** Full-precision JSON record (doubles carry their exact bits). */
std::string
tournamentJson(const std::vector<Standing> &ranked,
               const std::vector<Mix> &mixes,
               const bench::RunOptions &opt)
{
    std::ostringstream os;
    char buf[64];
    auto num = [&](double v) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return std::string(buf);
    };
    os << "{\n  \"bench\": \"arena_tournament\",\n"
       << "  \"mixes\": " << mixes.size() << ",\n"
       << "  \"scale\": " << opt.scale << ",\n"
       << "  \"seed\": " << opt.seed << ",\n"
       << "  \"mix_labels\": [";
    for (std::size_t m = 0; m < mixes.size(); ++m)
        os << (m ? ", " : "") << "\"" << mixes[m].label() << "\"";
    os << "],\n  \"standings\": [";
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const Standing &st = ranked[i];
        os << (i ? "," : "") << "\n    {\"rank\": " << (i + 1)
           << ", \"policy\": \"" << st.info->name << "\""
           << ", \"llc_mpki\": " << num(st.llcMpki)
           << ", \"speedup_vs_conv_nru\": " << num(st.vsConvNru)
           << ", \"speedup_vs_reuse_nrr\": " << num(st.vsReuseNrr)
           << ", \"per_mix_ipc\": [";
        for (std::size_t m = 0; m < st.perMixIpc.size(); ++m)
            os << (m ? ", " : "") << num(st.perMixIpc[m]);
        os << "]}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Policy arena: replacement-policy tournament",
        "ChampSim CRC2-family ports race the paper's six built-ins on "
        "one conventional SLLC; the NRR reuse cache (RC-4/1) and the "
        "conventional NRU baseline anchor the ranking",
        [](bench::RunOptions &o) {
            // A rank from fewer than 8 workloads is noise.
            o.mixCount = std::max<std::uint32_t>(o.mixCount, 8);
            // The tournament is the feed cache's home game — the whole
            // field shares 8 front-end streams per launch, and reruns
            // (policy tweaks, --jobs comparisons) share them across
            // processes — so it defaults on.  --no-feed-cache (or an
            // explicit --feed-cache=DIR) overrides.
            if (o.feedCacheDir.empty() && !o.feedCacheDisabled)
                o.feedCacheDir = "feedcache";
        });

    // The contenders: the whole registry, or one chosen by --policy.
    std::vector<const arena::PolicyInfo *> field;
    for (const arena::PolicyInfo &info : arena::policyRegistry()) {
        if (!info.inTournament)
            continue;
        if (!opt.policy.empty() && opt.policy != info.name)
            continue;
        field.push_back(&info);
    }

    // One config per contender plus the two anchors, simulated in a
    // single sweep: the conventional configs share their front end, so
    // fan-out pays one reference stream per mix for the whole field.
    std::vector<SystemConfig> cfgs;
    for (const arena::PolicyInfo *info : field)
        cfgs.push_back(conventionalSystem(8.0, info->kind, opt.scale));
    const std::size_t convNruIdx = cfgs.size();
    cfgs.push_back(conventionalSystem(8.0, ReplKind::NRU, opt.scale));
    const std::size_t reuseNrrIdx = cfgs.size();
    cfgs.push_back(reuseSystem(4.0, 1.0, 16, opt.scale));

    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const auto results = bench::runConfigsOverMixes(cfgs, mixes, opt);
    const auto &nruRows = results[convNruIdx];
    const auto &nrrRows = results[reuseNrrIdx];

    std::vector<Standing> ranked;
    for (std::size_t i = 0; i < field.size(); ++i) {
        Standing st;
        st.info = field[i];
        st.llcMpki = meanLlcMpki(results[i]);
        st.vsConvNru = meanSpeedup(results[i], nruRows);
        st.vsReuseNrr = meanSpeedup(results[i], nrrRows);
        for (const bench::RunResult &r : results[i])
            st.perMixIpc.push_back(r.aggregateIpc);
        ranked.push_back(std::move(st));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Standing &a, const Standing &b) {
                  if (a.vsConvNru != b.vsConvNru)
                      return a.vsConvNru > b.vsConvNru;
                  return std::string(a.info->name) < b.info->name;
              });

    const std::string md = leaderboardMarkdown(ranked, mixes.size());
    std::cout << "\n" << md << std::flush;
    {
        std::ofstream out("BENCH_arena.md");
        if (out)
            out << md;
        else
            warn("cannot write BENCH_arena.md");
    }
    {
        std::ofstream out("BENCH_arena.json");
        if (out)
            out << tournamentJson(ranked, mixes, opt);
        else
            warn("cannot write BENCH_arena.json");
    }
    std::cout << field.size() << " contender(s) ranked over "
              << mixes.size() << " mixes; BENCH_arena.json and "
                 "BENCH_arena.md written\n";
    return 0;
}
