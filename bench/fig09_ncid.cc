/**
 * @file
 * Figure 9 reproduction: reuse cache vs NCID with an 8 MBeq tag array
 * and data arrays of 4, 2, 1 and 0.5 MB.  NCID's same-set-count
 * decoupling turns the size reduction into an associativity reduction
 * and its selective allocation ignores reuse, so the reuse cache wins
 * at every size.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 9: reuse cache vs NCID (8 MBeq tags)",
        "RC beats NCID by 7.0 / 6.4 / 5.2 / 5.3% at 4 / 2 / 1 / 0.5 MB; "
        "no NCID setting matches the 8 MB baseline");

    const auto mixes = makeMixes(opt.mixCount, 8, 7);
    const auto base =
        bench::runBaselineOverMixes(bench::baselineFor(opt), mixes, opt);

    Table t("Average speedup over conv-8MB-LRU");
    t.header({"data size", "RC", "NCID", "RC gain", "paper RC gain"});
    const double paper_gain[] = {0.070, 0.064, 0.052, 0.053};
    int i = 0;
    for (double data_mb : {4.0, 2.0, 1.0, 0.5}) {
        // Fair comparison (paper): same number of sets and data ways,
        // so the RC uses a set-associative data array matching NCID's.
        const SystemConfig ncid_sys = ncidSystem(8, data_mb, opt.scale);
        const auto tag_geom = CacheGeometry::fromBytes(
            ncid_sys.ncid.tagEquivBytes, 16);
        const auto data_ways = static_cast<std::uint32_t>(
            ncid_sys.ncid.dataBytes / lineBytes / tag_geom.numSets());

        SystemConfig rc_sys = reuseSystem(8, data_mb, 0, opt.scale);
        rc_sys.reuse.dataWays = data_ways;
        rc_sys.reuse.dataRepl = ReplKind::NRU;

        const auto rc = bench::compareAgainst(rc_sys, mixes, base, opt);
        const auto nc = bench::compareAgainst(ncid_sys, mixes, base, opt);

        char name[32];
        std::snprintf(name, sizeof(name), "%g MB (%u-way)", data_mb,
                      data_ways);
        t.row({name, fmtDouble(rc.mean), fmtDouble(nc.mean),
               fmtPercent(rc.mean / nc.mean - 1.0),
               fmtPercent(paper_gain[i])});
        std::cout << "  " << name << ": RC " << fmtDouble(rc.mean)
                  << " vs NCID " << fmtDouble(nc.mean) << "\n"
                  << std::flush;
        ++i;
    }
    t.print(std::cout);
    return 0;
}
