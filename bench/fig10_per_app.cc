/**
 * @file
 * Figure 10 reproduction: per-application speedup distributions
 * (min / Q1 / median / Q3 / max) across all mixes containing each
 * application, for RC-8/4, RC-8/2 and RC-8/1.
 */

#include <iostream>
#include <map>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 10: per-application speedup quartiles",
        "RC-8/4 improves nearly every application (worst Q1 ~0.98); "
        "with RC-8/1 a handful of applications with long reuse "
        "distances lose",
        [](bench::RunOptions &o) {
            // Per-application distributions need a fair number of
            // occurrences.
            if (o.mixCount < 16)
                o.mixCount = 16;
        });

    const auto mixes = makeMixes(opt.mixCount, 8, 7);

    // Baseline per-core IPCs per mix (runs concurrently under --jobs).
    const auto base =
        bench::runBaselineOverMixes(bench::baselineFor(opt), mixes, opt);
    std::cout << "  baseline done\n" << std::flush;

    struct Cfg { const char *name; double tag, data; };
    const Cfg cfgs[] = {{"RC-8/4", 8, 4}, {"RC-8/2", 8, 2},
                        {"RC-8/1", 8, 1}};

    for (const Cfg &cfg : cfgs) {
        // Per-mix runs fan out over the pool into pre-sized slots; the
        // per-application aggregation below stays sequential so the
        // sample order (and the quartiles) match the serial path.
        std::vector<bench::RunResult> results(mixes.size());
        bench::forEachRun(mixes.size(), opt, [&](std::size_t i) {
            results[i] = bench::runMix(
                reuseSystem(cfg.tag, cfg.data, 0, opt.scale), mixes[i],
                opt);
        });
        std::map<std::string, std::vector<double>> per_app;
        for (std::size_t i = 0; i < mixes.size(); ++i) {
            const auto &res = results[i];
            for (std::size_t c = 0; c < res.coreIpc.size(); ++c) {
                if (base[i].coreIpc[c] > 0.0) {
                    per_app[mixes[i].apps[c]].push_back(
                        res.coreIpc[c] / base[i].coreIpc[c]);
                }
            }
        }
        Table t(std::string(cfg.name) +
                ": per-application speedup vs conv-8MB-LRU");
        t.header({"application", "n", "min", "Q1", "median", "Q3",
                  "max"});
        for (const auto &[app, samples] : per_app) {
            const Quartiles q = computeQuartiles(samples);
            t.row({app, std::to_string(samples.size()),
                   fmtDouble(q.min, 2), fmtDouble(q.q1, 2),
                   fmtDouble(q.median, 2), fmtDouble(q.q3, 2),
                   fmtDouble(q.max, 2)});
        }
        t.print(std::cout);
        std::cout << std::flush;
    }
    return 0;
}
