/**
 * @file
 * Figure 1a reproduction: fraction of live SLLC lines over time for the
 * Section 2 example workload on the 8 MB LRU baseline, with the DRRIP
 * and NRR comparison points of Section 2.1.
 */

#include <algorithm>
#include <cstdio>

#include "analysis/liveness.hh"
#include "harness.hh"

int
main(int argc, char **argv)
{
    using namespace rc;
    const auto opt = bench::initBench(
        argc, argv,
        "Figure 1a: live-line fraction over time (example workload)",
        "LRU varies 5.7-29.8%, average 17.4%; DRRIP 34.8%, NRR 37.9%");

    const Mix mix = exampleMix();

    struct Row
    {
        const char *name;
        ReplKind repl;
        double paperAvg;
    };
    const Row rows[] = {
        {"LRU", ReplKind::LRU, 0.174},
        {"DRRIP", ReplKind::DRRIP, 0.348},
        {"NRR", ReplKind::NRR, 0.379},
    };

    for (const Row &row : rows) {
        const SystemConfig sys =
            conventionalSystem(8, row.repl, opt.scale);
        GenerationTracker tracker;
        Cycle start = 0, end = 0;
        bench::runMix(sys, mix, opt, &tracker, &start, &end);
        const LiveSeries series = computeLiveSeries(
            tracker.records(), start, end, opt.samplePeriod,
            sys.conv.capacityBytes / lineBytes);

        std::printf("\n%s: mean live fraction %.1f%% (paper %.1f%%), "
                    "range %.1f%%..%.1f%%\n",
                    row.name, series.mean * 100.0, row.paperAvg * 100.0,
                    *std::min_element(series.fraction.begin(),
                                      series.fraction.end()) * 100.0,
                    *std::max_element(series.fraction.begin(),
                                      series.fraction.end()) * 100.0);
        std::printf("series (one sample per %llu cycles):\n",
                    static_cast<unsigned long long>(series.period));
        for (std::size_t i = 0; i < series.fraction.size(); ++i) {
            std::printf("%5.1f%%%s", series.fraction[i] * 100.0,
                        (i + 1) % 10 == 0 ? "\n" : " ");
        }
        std::printf("\n");
    }
    return 0;
}
